"""Deterministic perf workloads (seeded, wall-clock-free by construction).

Every workload is a pure function of ``(clock, quick, seed)``: all inputs
are generated from a seeded :class:`numpy.random.Generator` before timing
starts, so two runs measure byte-identical work.  The only source of
nondeterminism is the wall clock itself, which is injected by the harness
(:func:`repro.perf.harness._wall_clock`) — this module never touches
``time`` directly, keeping the repo's single sanctioned detlint pragma in
one place.

Each workload returns ``{"metrics": {...}, "gates": {...}}``:

- ``metrics`` are informational (absolute seconds, throughput) and vary
  with the machine;
- ``gates`` are **same-run speedup ratios** (optimized stack vs the
  frozen :mod:`repro.perf.legacy` stack, measured in the same process on
  the same inputs), which is what makes a committed baseline comparable
  across machines.  Baseline regression checks only look at gates.

Gate-bearing workloads ignore ``quick`` for their problem size: the
ratios shift with n, so a shrunken run could not be compared against the
committed full-size baseline.  They are cheap enough (about a second)
that CI smoke runs them at canonical size; ``quick`` shrinks only the
informational throughput workloads and the harness repeat count.
"""

from __future__ import annotations

import gc
import os
from typing import Any, Callable

import numpy as np

from repro.comm import Message, MessageBus, Performative
from repro.comm.bus import RouteIndex
from repro.labsci.landscapes import ContinuousDim
from repro.labsci.quantum_dots import QuantumDotLandscape, quantum_dot_space
from repro.methods.bayesopt import BayesianOptimizer
from repro.methods.gp import GaussianProcess
from repro.methods.kernels import Matern52
from repro.net.topology import Link, Site, Topology
from repro.net.transport import Network
from repro.perf.legacy import (LegacyGaussianProcess, LegacyMatern52,
                               LegacySimulator, legacy_route_scan)
from repro.perf.legacy_ask import LegacyAskOptimizer, legacy_sample
from repro.scale import WorldRunner, WorldSpec, combine_hashes, decision_hash
from repro.scale.worlds import bo_world
from repro.sim.kernel import Simulator

Clock = Callable[[], float]


# -- surrogate stack -----------------------------------------------------------


def surrogate_e12(clock: Clock, *, quick: bool = False,
                  seed: int = 0) -> dict:
    """E12-shaped flat-BO campaign: the headline ≥3× comparison.

    Replays the surrogate side of one E12 campaign (quantum-dot space,
    29-dim encoding, budget 150, ``n_init=10``, 280-candidate pools,
    hyperparameter grid every 10th ask) through both stacks:

    - **legacy** — the pre-optimization loop: re-encode the full history
      and refit from scratch every ask, full 15-candidate grid rebuild
      every 10th, predict via an m×m query covariance;
    - **fast** — the current loop: stream new points as rank-1 updates,
      shared-distance-matrix grid every 10th, diagonal-only predict.

    Candidate generation and landscape evaluation are identical in both
    campaigns and excluded from timing; what is measured is everything
    between "history updated" and "acquisition scores ready".
    """
    del quick  # canonical size always: gates must match the baseline's
    space = quantum_dot_space()
    landscape = QuantumDotLandscape(seed=2)
    rng = np.random.default_rng(seed)
    n_total = 150
    n_init, refit_every = 10, 10
    pool_size = 280

    params = [space.sample(rng) for _ in range(n_total)]
    values = np.array([landscape.objective_value(p) for p in params])
    pools = [np.array([space.encode(space.sample(rng))
                       for _ in range(pool_size)])
             for _ in range(n_total - n_init)]

    def run_legacy() -> float:
        gp = LegacyGaussianProcess(kernel=LegacyMatern52(lengthscale=0.3),
                                   noise=0.02)
        since = 0
        t0 = clock()
        for i in range(n_init, n_total):
            X = np.array([space.encode(p) for p in params[:i]])
            since += 1
            if since >= refit_every or gp.n_observations == 0:
                gp.fit_hyperparameters(X, values[:i])
                since = 0
            else:
                gp.fit(X, values[:i])
            mean, std = gp.predict(pools[i - n_init])
            int(np.argmax(mean + std))
        return clock() - t0

    def run_fast() -> float:
        gp = GaussianProcess(kernel=Matern52(lengthscale=0.3), noise=0.02)
        since = synced = 0
        t0 = clock()
        for i in range(n_init, n_total):
            since += 1
            if since >= refit_every or gp.n_observations == 0:
                X = np.array([space.encode(p) for p in params[:i]])
                gp.fit_hyperparameters(X, values[:i])
                since = 0
            else:
                for j in range(synced, i):
                    gp.observe(space.encode(params[j]), values[j])
            synced = i
            mean, std = gp.predict(pools[i - n_init])
            int(np.argmax(mean + std))
        return clock() - t0

    legacy_s = run_legacy()
    fast_s = run_fast()
    iters = n_total - n_init
    return {
        "metrics": {
            "iterations": iters,
            "legacy_seconds": legacy_s,
            "fast_seconds": fast_s,
            "legacy_ms_per_ask": legacy_s / iters * 1e3,
            "fast_ms_per_ask": fast_s / iters * 1e3,
            "asks_per_second": iters / fast_s,
        },
        "gates": {"speedup": legacy_s / fast_s},
    }


#: ``bo_ask`` campaign shape (canonical — gate ratios shift with size).
_BO_ASK_BUDGET = 64
_BO_ASK_N_INIT = 8
_BO_ASK_POOL = 512
#: Distribution-witness limits: max KS statistic per continuous dim and
#: max absolute choice-frequency gap per discrete dim, between the
#: scalar and batched samplers at 2048 draws each.  The two-sample KS
#: critical value at alpha=0.001 for n=m=2048 is ~0.061; the seeded
#: draws land well inside it.
_BO_ASK_WITNESS_N = 2048
_BO_ASK_KS_LIMIT = 0.065
_BO_ASK_FREQ_LIMIT = 0.05


def _ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (no p-value machinery)."""
    a = np.sort(a)
    b = np.sort(b)
    grid = np.concatenate([a, b])
    grid.sort(kind="mergesort")
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def bo_ask(clock: Clock, *, quick: bool = False, seed: int = 0) -> dict:
    """Batched ``BayesianOptimizer.ask`` vs the frozen scalar ask path.

    Runs the same E12-shaped campaign (quantum-dot space, budget 64,
    512-candidate pools) through the live batched optimizer and through
    :class:`~repro.perf.legacy_ask.LegacyAskOptimizer` — the verbatim
    pre-vectorization pipeline with per-candidate ``sample``/``encode``
    loops.  Only the ``ask()`` calls are timed (tell/landscape work is
    identical and excluded); the ``ask_speedup`` gate is the same-run
    ratio, machine-portable like every other gate here.

    Two honesty checks ride along, both untimed:

    - **determinism replay** — the fast arm runs twice from the same
      seed and its full (params, value) decision sequence must hash
      identically, or the workload raises;
    - **distribution witness** — the scalar and batched samplers draw
      2048 points each from their own seeded streams and must agree per
      dimension (two-sample KS statistic for continuous dims, max
      absolute choice-frequency gap for discrete dims).  The two paths
      consume RNG variates in different orders by design, so decision
      *sequences* differ; this check pins down that the *distributions*
      do not.
    """
    del quick  # canonical size always: gates must match the baseline's
    landscape = QuantumDotLandscape(seed=2)
    space = landscape.space

    def run_arm(opt_cls, arm_seed: int) -> tuple[float, str]:
        opt = opt_cls(space, np.random.default_rng(arm_seed),
                      n_init=_BO_ASK_N_INIT, n_candidates=_BO_ASK_POOL)
        ask_s = 0.0
        decisions = []
        for _ in range(_BO_ASK_BUDGET):
            t0 = clock()
            params = opt.ask()
            ask_s += clock() - t0
            value = landscape.objective_value(params)
            opt.tell(params, value)
            decisions.append((params, value))
        return ask_s, decision_hash(decisions)

    legacy_s, _ = run_arm(LegacyAskOptimizer, seed)
    fast_s, fast_digest = run_arm(BayesianOptimizer, seed)
    _, replay_digest = run_arm(BayesianOptimizer, seed)
    if fast_digest != replay_digest:  # pragma: no cover - determinism gate
        raise RuntimeError(
            "batched ask replay diverged from itself: "
            f"{replay_digest[:12]} != {fast_digest[:12]}")

    scalar_rng = np.random.default_rng(seed + 101)
    batch_rng = np.random.default_rng(seed + 202)
    scalar_pts = [legacy_sample(space, scalar_rng)
                  for _ in range(_BO_ASK_WITNESS_N)]
    batch_pts = space.decode_batch(
        space.sample_batch(batch_rng, _BO_ASK_WITNESS_N))
    gap_max = 0.0
    for d in space.dims:
        if isinstance(d, ContinuousDim):
            gap = _ks_statistic(
                np.asarray([p[d.name] for p in scalar_pts]),
                np.asarray([p[d.name] for p in batch_pts]))
            limit = _BO_ASK_KS_LIMIT
        else:
            gap = max(
                abs(sum(p[d.name] == c for p in scalar_pts)
                    - sum(p[d.name] == c for p in batch_pts))
                / _BO_ASK_WITNESS_N
                for c in d.choices)
            limit = _BO_ASK_FREQ_LIMIT
        if gap > limit:  # pragma: no cover - distribution gate
            raise RuntimeError(
                f"batched sampler diverged from the scalar sampler on "
                f"dim {d.name!r}: gap {gap:.4f} > {limit}")
        gap_max = max(gap_max, gap)

    asks = _BO_ASK_BUDGET
    return {
        "metrics": {
            "asks": asks,
            "pool_size": _BO_ASK_POOL,
            "legacy_seconds": legacy_s,
            "fast_seconds": fast_s,
            "legacy_ms_per_ask": legacy_s / asks * 1e3,
            "fast_ms_per_ask": fast_s / asks * 1e3,
            "asks_per_second": asks / fast_s,
            "sampler_gap_max": gap_max,
            "hash_equal": 1.0,
        },
        "gates": {"ask_speedup": legacy_s / fast_s},
    }


def gp_scaling(clock: Clock, *, quick: bool = False, seed: int = 0) -> dict:
    """Appending observations: rank-1 ``observe`` vs full legacy refit.

    At each dataset size n, time appending k further points — the legacy
    stack refits from scratch per point (O(n³) each), the fast stack
    applies rank-1 Cholesky updates (O(n²) each).  Per-size ratios grow
    with n but the small-n segments are only milliseconds long and too
    noisy to gate individually; the gate is the aggregate ratio across
    all sizes, dominated by the stable large-n work.
    """
    del quick  # canonical size always: gates must match the baseline's
    sizes = (50, 100, 200, 400)
    n_append = 20
    rng = np.random.default_rng(seed)
    n_max = max(sizes) + n_append
    X = rng.uniform(size=(n_max, 8))
    y = np.sin(3.0 * X[:, 0]) + 0.5 * X[:, 1] ** 2 \
        + 0.05 * rng.standard_normal(n_max)

    def time_legacy(n: int) -> float:
        legacy = LegacyGaussianProcess(
            kernel=LegacyMatern52(lengthscale=0.3), noise=0.05)
        legacy.fit(X[:n], y[:n])
        t0 = clock()
        for j in range(n_append):
            legacy.fit(X[:n + j + 1], y[:n + j + 1])
        return clock() - t0

    def time_fast(n: int) -> float:
        gp = GaussianProcess(kernel=Matern52(lengthscale=0.3), noise=0.05)
        gp.fit(X[:n], y[:n])
        t0 = clock()
        for j in range(n_append):
            gp.observe(X[n + j], y[n + j])
        return clock() - t0

    metrics: dict[str, float] = {}
    legacy_total = fast_total = 0.0
    for n in sizes:
        # Best-of-two per segment: the segments are short enough that a
        # single scheduler hiccup would dominate an unlucky run.
        legacy_s = min(time_legacy(n), time_legacy(n))
        fast_s = min(time_fast(n), time_fast(n))
        metrics[f"legacy_refit_seconds_n{n}"] = legacy_s
        metrics[f"incremental_seconds_n{n}"] = fast_s
        metrics[f"observe_speedup_n{n}"] = legacy_s / fast_s
        legacy_total += legacy_s
        fast_total += fast_s
    metrics["appends_per_size"] = n_append
    return {"metrics": metrics,
            "gates": {"observe_speedup": legacy_total / fast_total}}


# -- sim kernel / comm ---------------------------------------------------------


#: Instrument-polling fleet shape for :func:`sim_events` (canonical —
#: the gate ratio shifts with size, so quick runs use the same numbers).
_SIM_POLLERS = 1000       # identical-period instruments per tick
_SIM_TICKS = 200          # polling rounds
_SIM_PERIOD_S = 0.25      # shared polling period (max coalescing)
_SIM_WATCHDOGS = 5000     # far-future deadlines held pending throughout


def _poll_fleet(sim, log: list) -> float:
    """Build the polling-fleet program on ``sim`` (either kernel).

    Models the dominant event pattern of a running facility: every tick,
    each of ``_SIM_POLLERS`` instruments schedules its next sample at
    exactly ``now + _SIM_PERIOD_S`` (all coalescible into one bucket),
    while ``_SIM_WATCHDOGS`` campaign deadlines sit pending far beyond
    the run — dead weight for a flat heap, parked in the calendar
    queue's far band.  Returns the ``run(until=...)`` deadline.
    """
    for i in range(_SIM_WATCHDOGS):
        sim.timeout(1e6 + i * 1e-3)
    state = [0]

    def drive() -> None:
        tick = state[0]
        if tick >= _SIM_TICKS:
            return
        state[0] = tick + 1
        timeout = sim.timeout
        for _ in range(_SIM_POLLERS):
            timeout(_SIM_PERIOD_S)
        log.append((sim.now, tick, len(sim._queue)))
        sim.schedule_callback(_SIM_PERIOD_S, drive)

    sim.schedule_callback(0.0, drive)
    return _SIM_TICKS * _SIM_PERIOD_S + 1.0


def sim_events(clock: Clock, *, quick: bool = False, seed: int = 0) -> dict:
    """Kernel throughput: calendar-queue kernel vs the frozen heap kernel.

    Runs the identical seeded polling-fleet program through the live
    :class:`~repro.sim.kernel.Simulator` and through
    :class:`~repro.perf.legacy.LegacySimulator` (the pre-PR binary-heap
    kernel, frozen with its original event/process classes), in the same
    process on the same inputs — the ``kernel_speedup`` ratio is the
    machine-portable gate.  Each arm's per-tick decision log (time,
    tick, pending-event count) is hashed and compared: a faster kernel
    that reorders or drops events would fail here, not ship.

    The cyclic garbage collector is parked during each timed arm
    (symmetrically) so allocator sweeps over the hundreds of thousands
    of live event objects do not drown the queue-structure signal.
    """
    del quick  # canonical size always: gates must match the baseline's
    del seed   # the program is fixed; delays are structural, not random

    # Per arm: one drive callback plus its pollers per tick, plus the
    # initial schedule_callback kick-off; the watchdogs stay pending.
    processed = _SIM_TICKS * (_SIM_POLLERS + 1) + 1

    def time_arm(sim_cls) -> tuple[float, str, Any]:
        sim = sim_cls()
        log: list = []
        until = _poll_fleet(sim, log)
        gc.collect()
        gc.disable()
        t0 = clock()
        sim.run(until=until)
        elapsed = clock() - t0
        gc.enable()
        assert len(sim._queue) == _SIM_WATCHDOGS, "unexpected pending events"
        return elapsed, decision_hash(log), sim

    legacy_s, legacy_digest, _ = time_arm(LegacySimulator)
    fast_s, fast_digest, sim = time_arm(Simulator)
    if fast_digest != legacy_digest:  # pragma: no cover - determinism gate
        raise RuntimeError(
            "calendar-queue kernel diverged from the frozen heap kernel: "
            f"{fast_digest[:12]} != {legacy_digest[:12]}")
    stats = sim.queue_stats()
    return {
        "metrics": {
            "events": processed,
            "seconds": fast_s,
            "legacy_seconds": legacy_s,
            "events_per_second": processed / fast_s,
            "legacy_events_per_second": processed / legacy_s,
            "hash_equal": 1.0,
            "queue_coalesced": stats["coalesced"],
            "queue_far_deferred": stats["far_deferred"],
            "queue_migrated": stats["migrated"],
            "queue_buckets_opened": stats["buckets_opened"],
        },
        "gates": {"kernel_speedup": legacy_s / fast_s},
    }


def bus_throughput(clock: Clock, *, quick: bool = False,
                   seed: int = 0) -> dict:
    """Pub/sub round-trips across a two-site WAN link (informational).

    One producer publishes to a topic queue on a remote broker while one
    consumer drains and acks it — the telemetry-ingest shape every
    federated campaign runs (E7/E10).
    """
    n_messages = 200 if quick else 2000
    topo = Topology()
    topo.add_site(Site.make("a"))
    topo.add_site(Site.make("b"))
    topo.connect("a", "b", Link(latency_s=0.005, bandwidth_Bps=1.25e9))
    sim = Simulator()
    network = Network(sim, topo, np.random.default_rng(seed))
    bus = MessageBus(sim, network)
    broker = bus.add_broker("main", site="a")
    queue = broker.declare_queue("telemetry")
    broker.bind("telemetry", "lab.#")

    def producer():
        for i in range(n_messages):
            msg = Message(Performative.INFORM, "instrument", "lab.b.xrd",
                          payload={"scan": i})
            yield from bus.publish("main", "b", "lab.b.xrd", msg)

    consumed = 0

    def consumer():
        nonlocal consumed
        while consumed < n_messages:
            env = yield from bus.consume("main", "telemetry", "b")
            queue.ack(env)
            consumed += 1

    sim.process(producer())
    sim.process(consumer())
    t0 = clock()
    sim.run()
    elapsed = clock() - t0
    return {
        "metrics": {
            "messages": consumed,
            "seconds": elapsed,
            "messages_per_second": consumed / elapsed,
            "sim_seconds": sim.now,
        },
        "gates": {},
    }

def _routing_tables(seed: int):
    """Seeded binding table + topic stream shared by both routing arms.

    Shaped like a busy federation broker: every site/instrument pair
    publishes telemetry, and consumers subscribe with a realistic mix of
    exact topics, ``*`` holes, and ``#`` tails.
    """
    rng = np.random.default_rng(seed)
    sites = [f"site-{i}" for i in range(12)]
    kinds = ["xrd", "microscope", "furnace", "flow", "spectrometer"]
    streams = ["scan", "status", "calib", "alert"]

    bindings: list[tuple[str, str]] = []
    n_queues = 48
    for q in range(n_queues):
        qname = f"q-{q}"
        for _ in range(int(rng.integers(8, 22))):
            shape = rng.random()
            site = sites[int(rng.integers(len(sites)))]
            kind = kinds[int(rng.integers(len(kinds)))]
            stream = streams[int(rng.integers(len(streams)))]
            if shape < 0.35:
                pattern = f"lab.{site}.{kind}.{stream}"
            elif shape < 0.6:
                pattern = f"lab.*.{kind}.{stream}"
            elif shape < 0.8:
                pattern = f"lab.{site}.#"
            else:
                pattern = f"lab.#.{stream}"
            bindings.append((pattern, qname))

    topics = []
    for _ in range(1500):
        site = sites[int(rng.integers(len(sites)))]
        kind = kinds[int(rng.integers(len(kinds)))]
        stream = streams[int(rng.integers(len(streams)))]
        depth = rng.random()
        if depth < 0.7:
            topics.append(f"lab.{site}.{kind}.{stream}")
        elif depth < 0.9:
            topics.append(f"lab.{site}.{kind}.{stream}.chunk-3")
        else:
            topics.append(f"ops.{site}.{stream}")
    return bindings, topics


def bus_routing_indexed(clock: Clock, *, quick: bool = False,
                        seed: int = 0) -> dict:
    """Compiled trie routing vs the frozen per-publish linear scan.

    Both arms compute the delivery set for the same seeded topic stream
    over the same ~700-binding table: **legacy** re-scans every binding
    with the recursive matcher on each publish
    (:func:`~repro.perf.legacy.legacy_route_scan`); **fast** compiles the
    table into a :class:`~repro.comm.bus.RouteIndex` once (build time is
    charged to the fast arm) and walks the trie per topic.  The two
    delivery sequences are hash-compared — a speedup that changed who
    receives what would be a bug, not a win.
    """
    del quick  # canonical size always: gates must match the baseline's
    bindings, topics = _routing_tables(seed)

    t0 = clock()
    legacy_sets = [legacy_route_scan(bindings, topic) for topic in topics]
    legacy_s = clock() - t0

    t0 = clock()
    index = RouteIndex(bindings)
    fast_sets = [index.match(topic) for topic in topics]
    fast_s = clock() - t0

    legacy_digest = decision_hash([list(s) for s in legacy_sets])
    fast_digest = decision_hash([list(s) for s in fast_sets])
    if legacy_digest != fast_digest:  # pragma: no cover - correctness gate
        raise RuntimeError(
            "RouteIndex delivery sets diverged from the legacy scan "
            f"({fast_digest[:12]} != {legacy_digest[:12]})")

    return {
        "metrics": {
            "bindings": len(bindings),
            "publishes": len(topics),
            "deliveries": float(sum(len(s) for s in fast_sets)),
            "legacy_seconds": legacy_s,
            "indexed_seconds": fast_s,
            "legacy_routes_per_second": len(topics) / legacy_s,
            "indexed_routes_per_second": len(topics) / fast_s,
        },
        "gates": {"speedup": legacy_s / fast_s},
    }


def parallel_worlds(clock: Clock, *, quick: bool = False,
                    seed: int = 0) -> dict:
    """Multi-seed world sweep: serial loop vs the warm process pool.

    Runs the same seeded BO worlds twice — serially in-process, then
    through :class:`~repro.scale.WorldRunner` at ``min(8, cpu_count)``
    workers with the pool pre-forked (:meth:`~repro.scale.WorldRunner.warm`)
    outside the timed region — and demands byte-identical per-world
    decision hashes.  The world count scales with the worker count
    (``2 x workers``, floor 6) so every worker gets real work and
    startup cost is amortized.

    The speedup is machine-*dependent* by design: it tracks core count.
    It is always reported as a metric, but it is only a **gate** when
    ``cpu_count >= 4`` — on smaller machines a parallel win is not
    physically available, so the gate is *skipped* (declared under
    ``skipped``, surfaced as ``skipped_gates`` in the report) rather
    than faked or pinned near 1.0.  ``cpu_count`` is recorded so a
    baseline and a CI run can be compared knowingly.
    """
    del quick  # canonical size always: gates must match the baseline's
    cpus = os.cpu_count() or 1
    workers = min(8, cpus)
    n_worlds = max(6, 2 * workers)
    seeds = [seed + i for i in range(n_worlds)]
    config = {"budget": 25, "n_candidates": 96, "n_init": 6}
    specs = [WorldSpec(seed=s, entrypoint=bo_world, config=config)
             for s in seeds]

    serial_runner = WorldRunner(1)
    t0 = clock()
    serial = serial_runner.run(specs)
    serial_s = clock() - t0

    with WorldRunner(workers).warm() as parallel_runner:
        t0 = clock()
        parallel = parallel_runner.run(specs)
        parallel_s = clock() - t0

    if serial.hashes != parallel.hashes:  # pragma: no cover - det. gate
        raise RuntimeError(
            "parallel worlds diverged from serial replay: "
            f"{combine_hashes(parallel.hashes)[:12]} != "
            f"{combine_hashes(serial.hashes)[:12]}")

    speedup = serial_s / parallel_s
    gates: dict[str, float] = {}
    skipped: dict[str, str] = {}
    if cpus >= 4:
        gates["parallel_speedup"] = speedup
    else:
        skipped["parallel_speedup"] = (
            f"cpu_count={cpus} < 4: no parallel win is physically "
            f"available; speedup {speedup:.2f}x reported as a metric only")
    return {
        "metrics": {
            "worlds": len(seeds),
            "workers": workers,
            "cpu_count": cpus,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "parallel_speedup": speedup,
            "hash_equal": 1.0,
            "worlds_per_second": len(seeds) / parallel_s,
        },
        "gates": gates,
        "skipped": skipped,
    }


#: Sim-seconds of submit-to-complete p99 the service workload is
#: budgeted against: the headroom gate is ``budget / measured_p99``, so
#: a scheduler regression that inflates tail latency shrinks the gate.
_SERVICE_P99_BUDGET_S = 100_000.0


def _service_scenario(seed: int) -> dict:
    """One full multi-tenant service run (sim-deterministic)."""
    from repro.service.loadgen import (LoadGenerator, TenantLoad,
                                       synthetic_runner)
    from repro.service.service import CampaignService, FacilitySlot
    from repro.service.tenants import TenantQuota

    n_slots = 32
    campaigns_per_tenant = 150
    experiments = 6

    sim = Simulator()
    runner = synthetic_runner(sim, seed=seed, mean_experiment_s=240.0)
    service = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)])
    loads = []
    for i in range(4):  # standing pipelines: keep 40 in flight each
        loads.append(TenantLoad(
            name=f"closed-{i}", mode="closed",
            campaigns=campaigns_per_tenant, concurrency=40,
            experiments=experiments,
            quota=TenantQuota(max_in_flight=40, max_queued=200)))
    for i in range(4):  # bursty external partners: Poisson, deadlined
        loads.append(TenantLoad(
            name=f"open-{i}", mode="open",
            campaigns=campaigns_per_tenant, arrival_rate_per_s=0.1,
            experiments=experiments, deadline_s=200_000.0,
            quota=TenantQuota(max_in_flight=40, max_queued=200)))
    gen = LoadGenerator(service, loads, seed=seed)
    summary = gen.run()
    summary["decision_digest"] = decision_hash(service.decision_log())
    return summary


def service_multitenant(clock: Clock, *, quick: bool = False,
                        seed: int = 0) -> dict:
    """Multi-tenant campaign service under a mixed open/closed load.

    Eight tenants (four closed-loop standing pipelines, four open-loop
    Poisson arrivals) push 1200 campaigns through 32 shared facility
    slots — several hundred in the system at the peak — under the
    fair-share + deadline scheduler.  The scenario runs twice and the
    two decision logs are hash-compared: a faster-but-reordered
    scheduler would be a bug, not a win.

    Both gates are *sim-time* quantities, fully deterministic and
    machine-independent: the Jain fairness index of delivered
    experiments across tenants, and the p99 submit-to-complete latency
    expressed as headroom against a fixed budget (higher is better, so
    the harness's regression check points the right way).  Wall-clock
    throughput is reported as informational metrics only.
    """
    del quick  # canonical size always: gates must match the baseline's
    t0 = clock()
    first = _service_scenario(seed)
    elapsed = clock() - t0
    replay = _service_scenario(seed)
    if first["decision_digest"] != replay["decision_digest"]:
        raise RuntimeError(  # pragma: no cover - determinism gate
            "service replay diverged: "
            f"{replay['decision_digest'][:12]} != "
            f"{first['decision_digest'][:12]}")

    p99 = first["p99_submit_to_complete_s"]
    completed = first["campaigns_completed"]
    return {
        "metrics": {
            "tenants": len(first["tenants"]),
            "campaigns_completed": completed,
            "rejections": first["rejections"],
            "peak_in_system": first["peak_in_system"],
            "p99_submit_to_complete_s": p99,
            "mean_submit_to_complete_s":
                first["mean_submit_to_complete_s"],
            "sim_seconds": first["sim_seconds"],
            "seconds": elapsed,
            "campaigns_per_second": completed / elapsed,
            "hash_equal": 1.0,
        },
        "gates": {
            "fairness": first["fairness"],
            "p99_headroom": _SERVICE_P99_BUDGET_S / p99,
        },
    }


#: Records/second the sharded mesh must sustain (the roadmap's
#: 1000-facility ingest floor).  The headroom gate is capped (see
#: :func:`mesh_governance`) so it is stable run-to-run while still
#: collapsing below 1.0 if ingest ever drops under the floor.
_MESH_INGEST_FLOOR_RPS = 500.0
_MESH_HEADROOM_CAP = 10.0


def _mesh_corpus(seed: int, n_facilities: int, records_per: int):
    """Seeded index entries + governance query stream (shared by arms)."""
    rng = np.random.default_rng(seed)
    techniques = ("powder-xrd", "uv-vis", "saxs", "xps", "raman", "nmr")
    entries = []
    for i in range(n_facilities):
        site = f"site-{i}"
        institution = f"inst-{i % 40}"
        for r in range(records_per):
            entries.append({
                "record_id": f"rec-{i:04d}-{r:03d}",
                "schema_id": "synthesis@1",
                "site": site,
                "institution": institution,
                "source": f"instrument-{i % 7}",
                "sensitivity": "open",
                "keys": ["plqy", "yield_pct"],
                "metadata": {
                    "technique": techniques[int(rng.integers(6))]},
            })
    queries: list[dict] = []
    for q in range(240):
        shape = rng.random()
        if shape < 0.4:   # governance sweep: one technique, all shards
            queries.append({"metadata.technique":
                            techniques[int(rng.integers(6))]})
        elif shape < 0.7:  # institutional audit
            queries.append({"institution":
                            f"inst-{int(rng.integers(40))}"})
        elif shape < 0.9:  # facility-local listing (routes to one shard)
            queries.append({"site":
                            f"site-{int(rng.integers(n_facilities))}"})
        else:              # primary-key fetch
            pick = entries[int(rng.integers(len(entries)))]
            queries.append({"record_id": pick["record_id"]})
    return entries, queries


def mesh_governance(clock: Clock, *, quick: bool = False,
                    seed: int = 0) -> dict:
    """1000-facility sharded mesh vs the frozen flat-scan index.

    Both arms publish the same 5000 seeded index entries and answer the
    same 240-query governance stream (technique sweeps, institutional
    audits, facility listings, primary-key fetches): **legacy** is the
    pre-shard :class:`~repro.perf.legacy.LegacyDiscoveryIndex`, which
    scans every entry on every query; **fast** is the 32-shard
    :class:`~repro.data.shard.ShardedDiscoveryIndex`, which routes by
    facility and intersects inverted postings.  The two result-id
    sequences are hash-compared — a speedup that changed what governance
    sees would be a bug, not a win.

    Gates: ``query_speedup`` is the same-run legacy/fast ratio;
    ``ingest_headroom`` is fast-arm records-per-second over the 500/s
    floor, capped at 10.0 so the committed baseline stays stable on any
    machine with real headroom while still collapsing on a machine (or
    regression) that cannot hold the floor.

    The fast arm also re-ingests the corpus through a *bounded* tracer
    (untimed): the ring holds 256 of the 5000 ingest events and the
    overflow lands in ``obs.dropped_events`` — exported here so the
    memory-bound contract is visible in every perf report.
    """
    del quick  # canonical size always: gates must match the baseline's
    from repro.data.shard import ShardedDiscoveryIndex
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.perf.legacy import LegacyDiscoveryIndex

    n_facilities, records_per, n_shards = 1000, 5, 32
    entries, queries = _mesh_corpus(seed, n_facilities, records_per)

    legacy = LegacyDiscoveryIndex()
    t0 = clock()
    for entry in entries:
        legacy.publish(entry)
    legacy_pub_s = clock() - t0
    t0 = clock()
    legacy_results = [[e["record_id"] for e in legacy.query(**q)]
                      for q in queries]
    legacy_q_s = clock() - t0

    sharded = ShardedDiscoveryIndex(n_shards)
    t0 = clock()
    for entry in entries:
        sharded.publish(entry)
    fast_pub_s = clock() - t0
    t0 = clock()
    fast_results = [[e["record_id"] for e in sharded.query(**q)]
                    for q in queries]
    fast_q_s = clock() - t0

    legacy_digest = decision_hash(legacy_results)
    fast_digest = decision_hash(fast_results)
    if legacy_digest != fast_digest:  # pragma: no cover - correctness gate
        raise RuntimeError(
            "sharded index results diverged from the flat scan "
            f"({fast_digest[:12]} != {legacy_digest[:12]})")

    # Bounded-obs witness (untimed): every ingest emits a trace instant
    # through a 256-event ring with no spill, so all but the hot tail
    # land in obs.dropped_events.
    registry = MetricsRegistry()
    tracer = Tracer(Simulator(), run_id=f"mesh-governance-{seed}",
                    max_events=256, metrics=registry)
    for entry in entries:
        tracer.instant("ingest", record=entry["record_id"])
    dropped = registry.counter("obs.dropped_events").value

    records_per_second = len(entries) / fast_pub_s
    return {
        "metrics": {
            "facilities": n_facilities,
            "records": len(entries),
            "shards": n_shards,
            "queries": len(queries),
            "legacy_publish_seconds": legacy_pub_s,
            "fast_publish_seconds": fast_pub_s,
            "legacy_query_seconds": legacy_q_s,
            "fast_query_seconds": fast_q_s,
            "records_per_second": records_per_second,
            "legacy_queries_per_second": len(queries) / legacy_q_s,
            "fast_queries_per_second": len(queries) / fast_q_s,
            "max_shard_entries": float(max(sharded.shard_sizes())),
            "trace_ring_retained": float(len(tracer.events)),
            "obs_dropped_events": float(dropped),
            "hash_equal": 1.0,
        },
        "gates": {
            "query_speedup": legacy_q_s / fast_q_s,
            "ingest_headroom": min(
                records_per_second / _MESH_INGEST_FLOOR_RPS,
                _MESH_HEADROOM_CAP),
        },
    }


#: name -> workload, in report order.  Built once at import; never
#: mutated at runtime (detlint D001 contract).
WORKLOADS: dict[str, Callable[..., dict]] = {
    "surrogate_e12": surrogate_e12,
    "bo_ask": bo_ask,
    "gp_scaling": gp_scaling,
    "sim_events": sim_events,
    "bus_throughput": bus_throughput,
    "bus_routing_indexed": bus_routing_indexed,
    "parallel_worlds": parallel_worlds,
    "service_multitenant": service_multitenant,
    "mesh_governance": mesh_governance,
}
