"""Frozen pre-vectorization BO ask path — the ``bo_ask`` reference.

This module is a verbatim snapshot of the scalar candidate pipeline as it
stood *before* the batched ``ParameterSpace`` fast path: one
``space.sample`` call per candidate (one RNG variate per dimension per
point), one ``space.encode`` call per candidate, and a per-dimension
Python loop for each jittered incumbent copy.  The GP / kernel /
acquisition stack is shared with the live code (it was already batched
over candidates and is frozen separately in :mod:`repro.perf.legacy`);
what this module preserves is exactly the per-candidate Python iteration
the vectorized path eliminated.

It exists so the ``bo_ask`` workload can measure the batched ask against
the real pre-PR baseline *on the same machine, in the same process, on
the same seeded campaign* — the only comparison that makes a "≥3×
faster" claim reproducible.  Do not "fix" or vectorize this module; its
slowness is the point.

Because the scalar and batched paths consume the RNG in different orders
(per-point interleaved vs per-dim columns), their decision sequences
differ by design; the workload separately witnesses that the two
samplers agree *in distribution* per dimension (KS-style check).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.labsci.landscapes import ContinuousDim, ParameterSpace
from repro.methods.acquisition import score_candidates
from repro.methods.baselines import AskTellOptimizer
from repro.methods.gp import GaussianProcess
from repro.methods.kernels import Matern52


def legacy_sample(space: ParameterSpace,
                  rng: np.random.Generator) -> dict[str, Any]:
    """Scalar uniform draw: one RNG call per dimension, per point."""
    out: dict[str, Any] = {}
    for d in space.dims:
        if isinstance(d, ContinuousDim):
            out[d.name] = float(rng.uniform(d.low, d.high))
        else:
            out[d.name] = str(rng.choice(list(d.choices)))
    return out


def legacy_encode(space: ParameterSpace,
                  params: Mapping[str, Any]) -> np.ndarray:
    """Scalar encode: per-dim list building, one point at a time."""
    parts: list[float] = []
    for d in space.dims:
        if isinstance(d, ContinuousDim):
            parts.append(d.normalize(params[d.name]))
        else:
            onehot = [0.0] * len(d.choices)
            onehot[d.choices.index(params[d.name])] = 1.0
            parts.extend(onehot)
    return np.asarray(parts, dtype=np.float64)


class LegacyAskOptimizer(AskTellOptimizer):
    """Pre-vectorization ``BayesianOptimizer`` (scalar candidate loop).

    Mirrors the live optimizer's surrogate maintenance (incremental
    rank-1 sync, periodic grid refits) so the *only* difference timed by
    the ``bo_ask`` workload is the candidate pipeline: scalar
    sample/encode/perturb here, batched raw-matrix ops in
    :class:`repro.methods.bayesopt.BayesianOptimizer`.
    """

    def __init__(self, space: ParameterSpace, rng: np.random.Generator, *,
                 acquisition: str = "ei", n_init: int = 8,
                 n_candidates: int = 512, noise: float = 0.02,
                 refit_every: int = 10,
                 full_refit_every: int = 50) -> None:
        super().__init__(space)
        self.rng = rng
        self.acquisition = acquisition
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.refit_every = refit_every
        self.full_refit_every = full_refit_every
        self.gp = GaussianProcess(kernel=Matern52(lengthscale=0.3),
                                  noise=noise)
        self._since_refit = 0
        self._since_full_refit = 0
        self._arrivals: list[tuple[dict[str, Any], float]] = []
        self._n_synced = 0

    def tell(self, params: Mapping[str, Any], objective: float) -> None:
        super().tell(params, objective)
        self._arrivals.append((dict(params), float(objective)))

    def _encode_arrivals(self) -> tuple[np.ndarray, np.ndarray]:
        X = np.array([legacy_encode(self.space, p)
                      for p, _ in self._arrivals])
        y = np.array([v for _, v in self._arrivals])
        return X, y

    def _sync_surrogate(self) -> None:
        self._since_refit += 1
        if (self._since_refit >= self.refit_every
                or self.gp.n_observations == 0):
            X, y = self._encode_arrivals()
            self.gp.fit_hyperparameters(X, y)
            self._n_synced = len(self._arrivals)
            self._since_refit = 0
            self._since_full_refit = 0
            return
        pending = self._arrivals[self._n_synced:]
        if (self._since_full_refit + len(pending) >= self.full_refit_every
                and pending):
            X, y = self._encode_arrivals()
            self.gp.fit(X, y)
            self._n_synced = len(self._arrivals)
            self._since_full_refit = 0
            return
        for params, value in pending:
            self.gp.observe(legacy_encode(self.space, params), value)
        self._n_synced = len(self._arrivals)
        self._since_full_refit += len(pending)

    def ask(self) -> dict[str, Any]:
        observations = self.history
        if len(observations) < self.n_init:
            return legacy_sample(self.space, self.rng)
        self._sync_surrogate()
        y_best = max(v for _, v in observations)
        candidates = [legacy_sample(self.space, self.rng)
                      for _ in range(self.n_candidates)]
        if self.best is not None:
            _, inc = self.best
            for scale in (0.02, 0.05, 0.1):
                candidates.extend(self._perturb(inc, scale)
                                  for _ in range(8))
        Xc = np.array([legacy_encode(self.space, p) for p in candidates])
        scores = score_candidates(self.acquisition, self.gp, Xc,
                                  best=float(y_best), rng=self.rng)
        return candidates[int(np.argmax(scores))]

    def _perturb(self, params: Mapping[str, Any],
                 scale: float) -> dict[str, Any]:
        out = dict(params)
        for d in self.space.continuous:
            span = (d.high - d.low) * scale
            out[d.name] = d.clip(float(out[d.name])
                                 + float(self.rng.normal(0.0, span)))
        return out
