"""Frozen pre-optimization surrogate stack — the perf-harness reference.

This module is a verbatim snapshot of ``repro.methods.gp`` /
``repro.methods.kernels`` as they stood *before* the fast-path work
(incremental Cholesky updates, kernel-matrix caching, ``Kernel.diag``):
every fit is a from-scratch :math:`O(n^3)` factorization, the
hyperparameter grid rebuilds the full pairwise-distance matrix for every
(lengthscale, amplitude) pair, and ``predict`` materializes an m×m query
covariance just to read its diagonal.

It exists so the harness can measure the optimized stack against the real
pre-PR baseline *on the same machine, in the same process, on the same
seeded workload* — the only comparison that makes a "≥3× faster" claim
reproducible.  Do not "fix" or optimize this module; its slowness is the
point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve


def _legacy_sqdist(a: np.ndarray, b: np.ndarray,
                   lengthscale: float) -> np.ndarray:
    a = np.atleast_2d(a) / lengthscale
    b = np.atleast_2d(b) / lengthscale
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    d2 = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(d2, 0.0)


class LegacyRBF:
    """Pre-PR squared-exponential kernel (no caching, no diag shortcut)."""

    def __init__(self, lengthscale: float = 0.2,
                 amplitude: float = 1.0) -> None:
        self.lengthscale = float(lengthscale)
        self.amplitude = float(amplitude)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = _legacy_sqdist(a, b, self.lengthscale)
        return self.amplitude ** 2 * np.exp(-0.5 * d2)

    def with_params(self, lengthscale: float, amplitude: float) -> "LegacyRBF":
        return LegacyRBF(lengthscale, amplitude)


class LegacyMatern52:
    """Pre-PR Matern-5/2 kernel (no caching, no diag shortcut)."""

    def __init__(self, lengthscale: float = 0.2,
                 amplitude: float = 1.0) -> None:
        self.lengthscale = float(lengthscale)
        self.amplitude = float(amplitude)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.sqrt(_legacy_sqdist(a, b, self.lengthscale))
        s5d = np.sqrt(5.0) * d
        return (self.amplitude ** 2
                * (1.0 + s5d + (5.0 / 3.0) * d * d) * np.exp(-s5d))

    def with_params(self, lengthscale: float,
                    amplitude: float) -> "LegacyMatern52":
        return LegacyMatern52(lengthscale, amplitude)


class LegacyGaussianProcess:
    """Pre-PR exact GP: full refit on every data change."""

    def __init__(self, kernel=None, noise: float = 1e-2,
                 normalize_y: bool = True) -> None:
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self.kernel = kernel or LegacyRBF()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LegacyGaussianProcess":
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        z = (y - self._y_mean) / self._y_std
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise ** 2
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, z)
        self._X = X
        self._z = z
        return self

    def predict(self, Xs: np.ndarray,
                return_std: bool = True) -> tuple[np.ndarray, np.ndarray]:
        if self._X is None:
            raise RuntimeError("fit() before predict()")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = Ks @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = cho_solve(self._chol, Ks.T)
        # The pre-PR inefficiency under test: an m×m matrix for a diagonal.
        prior_var = np.diag(self.kernel(Xs, Xs))
        var = np.maximum(prior_var - np.sum(Ks * v.T, axis=1), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def log_marginal_likelihood(self) -> float:
        if self._X is None:
            raise RuntimeError("fit() before computing the LML")
        L = self._chol[0]
        n = self._X.shape[0]
        return float(-0.5 * self._z @ self._alpha
                     - np.sum(np.log(np.diag(L)))
                     - 0.5 * n * np.log(2 * np.pi))

    def fit_hyperparameters(
            self, X: np.ndarray, y: np.ndarray,
            lengthscales: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
            amplitudes: tuple[float, ...] = (0.5, 1.0, 2.0)
    ) -> "LegacyGaussianProcess":
        best_lml, best_kernel = -np.inf, self.kernel
        for l in lengthscales:
            for a in amplitudes:
                self.kernel = self.kernel.with_params(l, a)
                try:
                    self.fit(X, y)
                except np.linalg.LinAlgError:  # pragma: no cover - guard
                    continue
                lml = self.log_marginal_likelihood()
                if lml > best_lml:
                    best_lml, best_kernel = lml, self.kernel
        self.kernel = best_kernel
        return self.fit(X, y)


# -- frozen pre-optimization bus routing ---------------------------------------
#
# Snapshot of repro.comm.bus routing as it stood before the compiled
# RouteIndex: a recursive backtracking topic matcher (exponential on
# multi-'#' patterns) driven by a full linear scan over the binding list
# on every publish.  The ``bus_routing_indexed`` perf workload measures
# the optimized path against this, same process, same inputs.  Do not
# "fix" it; its slowness is the point.


def legacy_topic_matches(pattern: str, topic: str) -> bool:
    """Pre-PR recursive backtracking matcher (verbatim snapshot)."""
    pat = pattern.split(".")
    top = topic.split(".")

    def match(pi: int, ti: int) -> bool:
        while pi < len(pat):
            seg = pat[pi]
            if seg == "#":
                if pi == len(pat) - 1:
                    return True
                for skip in range(len(top) - ti + 1):
                    if match(pi + 1, ti + skip):
                        return True
                return False
            if ti >= len(top):
                return False
            if seg != "*" and seg != top[ti]:
                return False
            pi += 1
            ti += 1
        return ti == len(top)

    return match(0, 0)


def legacy_route_scan(bindings: "list[tuple[str, str]]",
                      topic: str) -> "tuple[str, ...]":
    """Pre-PR per-publish routing: linear scan, one match per pattern.

    Returns the delivery set exactly as the old ``Broker.route`` built
    it — deduplicated by queue, in first-binding order.
    """
    matched: list[str] = []
    seen: set[str] = set()
    for pattern, qname in bindings:
        if qname in seen:
            continue
        if legacy_topic_matches(pattern, topic):
            matched.append(qname)
            seen.add(qname)
    return tuple(matched)


# -- data mesh -------------------------------------------------------------


def _legacy_field_value(entry: dict, key: str):
    value = entry
    for part in key.split("."):
        value = value.get(part) if isinstance(value, dict) else None
        if value is None:
            break
    return value


class LegacyDiscoveryIndex:
    """Pre-shard discovery index: a flat dict scanned on every query.

    Verbatim snapshot of ``repro.data.mesh.DiscoveryIndex`` as it stood
    before the inverted secondary indexes and facility sharding: every
    ``query`` — even a pure ``record_id=`` lookup — walks every entry in
    sorted order and applies the filters one by one.  Its O(total
    records) cost per query is the baseline the ``mesh_governance``
    workload measures the sharded index against.
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict] = {}
        self.stats = {"publishes": 0, "queries": 0}

    def publish(self, entry: dict) -> None:
        self._entries[entry["record_id"]] = entry
        self.stats["publishes"] += 1

    def remove(self, record_id: str) -> None:
        self._entries.pop(record_id, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._entries

    def query(self, predicate=None, **equals) -> "list[dict]":
        self.stats["queries"] += 1
        out = []
        for record_id in sorted(self._entries):
            entry = self._entries[record_id]
            ok = True
            for key, want in equals.items():
                if _legacy_field_value(entry, key) != want:
                    ok = False
                    break
            if ok and (predicate is None or predicate(entry)):
                out.append(entry)
        return out


# -- frozen sim kernel ---------------------------------------------------------

# The pre-calendar-queue discrete-event kernel (flat binary heap, per-event
# step(), original event/process construction chain) lives in its own
# module; re-exported here so every frozen baseline is reachable from
# ``repro.perf.legacy``.
from repro.perf.legacy_kernel import LegacySimulator  # noqa: E402,F401
