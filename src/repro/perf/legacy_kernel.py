"""Frozen pre-optimization simulation kernel — the perf-harness reference.

This is a verbatim snapshot of the discrete-event stack
(:mod:`repro.sim.kernel`, :mod:`repro.sim.events`,
:mod:`repro.sim.process`) as it stood *before* the calendar-queue work:

- one binary heap of ``(time, seq, event)`` tuples — ``O(log n)`` per
  schedule and per pop on a heap sized by the entire pending horizon,
  with no timeout coalescing (a thousand identical instrument-poll
  timeouts are a thousand separate heap entries);
- a ``run`` loop that pays a ``step()`` call, a try/except, and a tuple
  unpack per event;
- the original event/process construction chain
  (``Timeout.__init__`` -> ``Event.__init__`` -> ``_schedule``) with no
  inlining or local-variable hoisting.

The classes are frozen *copies*, not imports of the live ones, so that
every optimization on the live path — queue structure, drain loop, event
construction, process resumption — shows up in the ``sim_events``
``kernel_speedup`` ratio.  Only the pieces that shared *user code* must
agree on are reused from the live modules: the :class:`Interrupt`
exception (so one generator body runs under either kernel), the
``_PENDING`` sentinel, and the control-flow exceptions.

Do not "fix" or optimize this module; its slowness is the point.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.events import ConditionValue, _PENDING
from repro.sim.ids import _AMBIENT, IdSequencer, bind_ambient
from repro.sim.kernel import EmptySchedule, StopSimulation
from repro.sim.process import Interrupt

_heappush = heapq.heappush
_heappop = heapq.heappop

_INFINITY = float("inf")


class LegacyEvent:
    """Pre-PR :class:`repro.sim.events.Event`, frozen verbatim."""

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "LegacySimulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["LegacyEvent"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "LegacyEvent":
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, *,
             delay: float = 0.0) -> "LegacyEvent":
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def trigger(self, event: "LegacyEvent") -> None:
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __and__(self, other: "LegacyEvent") -> "LegacyAllOf":
        return LegacyAllOf(self.sim, [self, other])

    def __or__(self, other: "LegacyEvent") -> "LegacyAnyOf":
        return LegacyAnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class LegacyTimeout(LegacyEvent):
    """Pre-PR :class:`repro.sim.events.Timeout`: the full init chain."""

    __slots__ = ("delay",)

    def __init__(self, sim: "LegacySimulator", delay: float,
                 value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class _LegacyCondition(LegacyEvent):
    """Pre-PR ``_Condition`` base for all-of / any-of composition."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "LegacySimulator",
                 events: Iterable[LegacyEvent]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._count = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same Simulator")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)

    def _evaluate(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: LegacyEvent) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._count, len(self._events)):
            value = ConditionValue()
            value.events = [ev for ev in self._events
                            if ev.processed and ev._ok]
            self.succeed(value)


class LegacyAllOf(_LegacyCondition):
    __slots__ = ()

    def _evaluate(self, done: int, total: int) -> bool:
        return done == total


class LegacyAnyOf(_LegacyCondition):
    __slots__ = ()

    def _evaluate(self, done: int, total: int) -> bool:
        return done > 0


class _LegacyCallbackEvent(LegacyEvent):
    """Pre-PR ``_CallbackEvent``: resolves only when the kernel pops it."""

    __slots__ = ("_deferred_value",)

    def __init__(self, sim: "LegacySimulator", value: Any) -> None:
        super().__init__(sim)
        self._deferred_value = value

    def _resolve(self) -> None:
        self._ok = True
        self._value = self._deferred_value


class LegacyProcess(LegacyEvent):
    """Pre-PR :class:`repro.sim.process.Process`: per-iteration attribute
    reads in ``_step`` and a ``_resume`` -> ``_step`` double call per
    resumption."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "LegacySimulator", generator: Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[LegacyEvent] = None
        self.name = name or getattr(generator, "__name__", "process")
        init = LegacyEvent(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._schedule(init, 0.0)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    @property
    def target(self) -> Optional[LegacyEvent]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self is self.sim.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        ev = LegacyEvent(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True
        ev.callbacks.append(self._resume_interrupt)
        self.sim._schedule(ev, 0.0)

    def _resume_interrupt(self, event: LegacyEvent) -> None:
        if not self.is_alive:
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: LegacyEvent) -> None:
        self._target = None
        self._step(event)

    def _step(self, event: LegacyEvent) -> None:
        sim = self.sim
        prev, sim._active_process = sim._active_process, self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        event._defused = True
                        target = self._generator.throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self.fail(exc)
                    return

                if not isinstance(target, LegacyEvent):
                    exc = TypeError(
                        f"process {self.name!r} yielded {target!r}, "
                        "which is not an Event")
                    try:
                        self._generator.throw(exc)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                        return
                    except BaseException as err:
                        self.fail(err)
                        return
                    continue

                if target.callbacks is not None:
                    target.callbacks.append(self._resume)
                    self._target = target
                    return
                event = target
        finally:
            sim._active_process = prev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "finished"
        return f"<LegacyProcess {self.name!r} {state}>"


class LegacySimulator:
    """Pre-PR discrete-event simulator: flat binary heap, per-event step."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, LegacyEvent]] = []
        self._seq = 0
        self._active_process: Optional[LegacyProcess] = None
        self.ids = IdSequencer()
        bind_ambient(self.ids)
        self.step_hook: Optional[Callable[[float, LegacyEvent], Any]] = None
        self.schedule_hook: Optional[Callable[[float, LegacyEvent], Any]] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[LegacyProcess]:
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> LegacyEvent:
        return LegacyEvent(self)

    def timeout(self, delay: float, value: Any = None) -> LegacyTimeout:
        return LegacyTimeout(self, delay, value)

    def process(self, generator: Generator) -> LegacyProcess:
        return LegacyProcess(self, generator)

    def all_of(self, events) -> LegacyAllOf:
        return LegacyAllOf(self, events)

    def any_of(self, events) -> LegacyAnyOf:
        return LegacyAnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: LegacyEvent, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        at = self._now + delay
        _heappush(self._queue, (at, self._seq, event))
        self._seq += 1
        if self.schedule_hook is not None:
            self.schedule_hook(at, event)

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any], value: Any = None
    ) -> LegacyEvent:
        ev = _LegacyCallbackEvent(self, value)
        ev.callbacks.append(lambda _ev: fn())
        self._schedule(ev, delay)
        return ev

    def peek(self) -> float:
        return self._queue[0][0] if self._queue else _INFINITY

    def step(self) -> None:
        """Process exactly one event from the queue (pre-PR shape)."""
        ids = self.ids
        if _AMBIENT.get() is not ids:
            _AMBIENT.set(ids)
        try:
            self._now, _, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        if event._ok is None:
            event._resolve()
        if self.step_hook is not None:
            self.step_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: "float | LegacyEvent | None" = None) -> Any:
        """Pre-PR run loop: one step() call (and one heap pop) per event."""
        stop_at = _INFINITY
        if until is not None:
            if isinstance(until, LegacyEvent):
                if until.callbacks is None:
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})")

        queue = self._queue
        step = self.step
        try:
            while queue and queue[0][0] <= stop_at:
                step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        if stop_at is not _INFINITY:
            self._now = max(self._now, stop_at)
        if isinstance(until, LegacyEvent) and not until.triggered:
            raise RuntimeError("simulation ended before the awaited event fired")
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LegacySimulator t={self._now:.6g} pending={len(self._queue)}>"
