"""CLI for the perf harness: ``python -m repro.perf``.

Examples
--------
Full run, write the committed benchmark file::

    PYTHONPATH=src python -m repro.perf --output BENCH_PERF.json

CI smoke: quick workloads, fail on >20% regression vs the baseline::

    PYTHONPATH=src python -m repro.perf --quick \\
        --baseline BENCH_PERF.json --threshold 0.2 --output bench_now.json
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.harness import (PerfHarness, compare_reports, load_report,
                                write_report)
from repro.perf.workloads import WORKLOADS


def _format(report: dict) -> str:
    lines = []
    skipped = report.get("skipped_gates", {})
    for name, result in report["workloads"].items():
        lines.append(f"{name}:")
        for metric, value in result["metrics"].items():
            lines.append(f"  {metric:<28} {value:g}")
        for gate, value in result["gates"].items():
            lines.append(f"  {gate:<28} {value:.2f}x  [gate]")
        for key, reason in skipped.items():
            if key.startswith(f"{name}."):
                gate = key.split(".", 1)[1]
                lines.append(f"  {gate:<28} [gate skipped: {reason}]")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Deterministic perf harness for the AISLE repro stack.")
    parser.add_argument("--quick", action="store_true",
                        help="shrunken workloads for CI smoke runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=None,
                        help="runs per workload (default: 1 quick, 3 full)")
    parser.add_argument("--workloads", default=None,
                        help=f"comma-separated subset of {sorted(WORKLOADS)}")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here")
    parser.add_argument("--baseline", default=None,
                        help="compare gates against this committed report")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional gate regression (default .2)")
    args = parser.parse_args(argv)

    names = args.workloads.split(",") if args.workloads else None
    try:
        harness = PerfHarness(quick=args.quick, seed=args.seed,
                              repeats=args.repeats, workloads=names)
    except ValueError as exc:
        parser.error(str(exc))
    report = harness.run()
    print(_format(report))

    if args.output:
        write_report(report, args.output)
        print(f"\nwrote {args.output}")

    if args.baseline:
        problems = compare_reports(report, load_report(args.baseline),
                                   threshold=args.threshold)
        if problems:
            print(f"\nPERF REGRESSION vs {args.baseline}:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        print(f"\nno regressions vs {args.baseline} "
              f"(threshold {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
