"""Deterministic performance harness for the repro stack.

The fast-path work on the surrogate stack (incremental GP updates,
kernel-matrix caching, diagonal-only prediction — see
:mod:`repro.methods.gp`) is only trustworthy if it is *measured*:

- :mod:`repro.perf.legacy` freezes the pre-optimization surrogate stack
  so the comparison baseline ships with the repo (likewise
  :mod:`repro.perf.legacy_ask` for the pre-vectorization scalar BO ask
  path and the legacy kernel/index snapshots living alongside);
- :mod:`repro.perf.workloads` defines seeded workloads whose gates are
  same-run fast-vs-legacy speedup ratios (machine-independent);
- :mod:`repro.perf.harness` times them, emits a versioned report
  (``BENCH_PERF.json``), and compares against a committed baseline;
- ``python -m repro.perf`` is the CLI (see :mod:`repro.perf.__main__`).
"""

from repro.perf.harness import (SCHEMA_VERSION, PerfHarness, compare_reports,
                                load_report, write_report)
from repro.perf.workloads import WORKLOADS

__all__ = [
    "SCHEMA_VERSION",
    "PerfHarness",
    "WORKLOADS",
    "compare_reports",
    "load_report",
    "write_report",
]
