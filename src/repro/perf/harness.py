"""The perf harness: timed runs, versioned reports, baseline gating.

Wall-clock access is concentrated in :func:`_wall_clock` — the one
sanctioned exception to detlint's D002 rule in this repository.  Every
workload receives that clock as an argument, so the rest of the perf
stack (and everything it imports) stays statically clean.

Report schema (``SCHEMA_VERSION``)::

    {
      "schema_version": 2,
      "quick": bool, "seed": int, "repeats": int,
      "workloads": {name: {"metrics": {...}, "gates": {...}}},
      "gates": {"<workload>.<gate>": ratio, ...},
      "skipped_gates": {"<workload>.<gate>": "why", ...},
      "obs": {"counters": {"perf.workloads_run": n},
              "gauges": {"perf.<workload>.<metric>": value, ...}}
    }

``gates`` are same-run speedup ratios (see :mod:`repro.perf.workloads`):
comparing them against a committed baseline is machine-independent, which
is what lets CI fail on a >20% regression without pinning hardware.

``skipped_gates`` records gates a workload *declined to evaluate* on this
machine (e.g. ``parallel_worlds.parallel_speedup`` on a single-core box,
where no parallel win is physically available).  A skip is an honest
"not measurable here", never a pass: :func:`compare_reports` exempts a
gate only when the side missing it explicitly declared the skip, so a
gate that silently vanishes still fails the comparison.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.perf.workloads import WORKLOADS

SCHEMA_VERSION = 2


def _wall_clock() -> float:
    """Monotonic wall-time read for perf measurement only.

    Simulation code must read ``sim.now``; measuring how long real code
    takes is the single legitimate use of the host clock here.
    """
    return time.perf_counter()  # detlint: ignore[D002] — perf harness measures real elapsed time


class PerfHarness:
    """Runs the registered workloads and assembles a report.

    Parameters
    ----------
    quick:
        Shrink every workload for CI smoke runs (seconds, not minutes).
    seed:
        Seed for workload input generation (the work is identical across
        runs with the same seed; only the clock varies).
    repeats:
        Runs per workload; per-metric medians go into the report.
        Defaults to 1 in quick mode, 3 otherwise.
    workloads:
        Subset of workload names to run (default: all registered).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        harness reports ``perf.*`` gauges/counters into it either way and
        embeds the snapshot in the report.
    """

    def __init__(self, *, quick: bool = False, seed: int = 0,
                 repeats: Optional[int] = None,
                 workloads: Optional[list[str]] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.quick = quick
        self.seed = seed
        self.repeats = repeats if repeats is not None else (1 if quick else 3)
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        names = workloads if workloads is not None else list(WORKLOADS)
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            raise ValueError(
                f"unknown workloads {unknown}; known: {sorted(WORKLOADS)}")
        self.workload_names = names
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def run(self) -> dict:
        """Run every selected workload and return the report dict."""
        report: dict = {
            "schema_version": SCHEMA_VERSION,
            "quick": self.quick,
            "seed": self.seed,
            "repeats": self.repeats,
            "workloads": {},
            "gates": {},
            "skipped_gates": {},
        }
        for name in self.workload_names:
            fn = WORKLOADS[name]
            runs = [fn(_wall_clock, quick=self.quick, seed=self.seed)
                    for _ in range(self.repeats)]
            merged = {
                "metrics": _median_of(r["metrics"] for r in runs),
                "gates": _median_of(r["gates"] for r in runs),
            }
            report["workloads"][name] = merged
            for gate, value in merged["gates"].items():
                report["gates"][f"{name}.{gate}"] = value
            for run in runs:
                for gate, reason in run.get("skipped", {}).items():
                    report["skipped_gates"][f"{name}.{gate}"] = reason
            for metric, value in merged["metrics"].items():
                self.metrics.gauge(f"perf.{name}.{metric}").set(value)
            self.metrics.counter("perf.workloads_run").inc()
        snap = self.metrics.snapshot()
        report["obs"] = {
            kind: {k: v for k, v in snap[kind].items()
                   if k.startswith("perf.")}
            for kind in ("counters", "gauges")
        }
        return report


def _median_of(dicts) -> dict[str, float]:
    """Key-wise median across same-keyed dicts, rounded for stable JSON."""
    dicts = list(dicts)
    return {k: _round(statistics.median(d[k] for d in dicts))
            for k in dicts[0]}


def _round(x: float) -> float:
    return float(f"{float(x):.6g}")


# -- baseline comparison -------------------------------------------------------


def compare_reports(current: dict, baseline: dict,
                    threshold: float = 0.20) -> list[str]:
    """Regression messages (empty = pass) for current vs baseline gates.

    A gate regresses when its speedup ratio drops more than ``threshold``
    (fractional) below the committed baseline.  Gates present in only one
    report are reported as structural drift rather than silently skipped
    — *unless* the side missing the gate explicitly declared it under
    ``skipped_gates`` (machine-dependent gates like
    ``parallel_worlds.parallel_speedup`` are skipped, not faked, on
    boxes that cannot evaluate them; the baseline and CI may legally
    run on different core counts).
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError("threshold must be in [0, 1)")
    problems = []
    cur, base = current.get("gates", {}), baseline.get("gates", {})
    cur_skipped = current.get("skipped_gates", {})
    base_skipped = baseline.get("skipped_gates", {})
    for key in sorted(base):
        if key not in cur:
            if key in cur_skipped:
                continue  # declared unmeasurable on this machine
            problems.append(f"gate {key!r} missing from current report")
            continue
        floor = base[key] * (1.0 - threshold)
        if cur[key] < floor:
            problems.append(
                f"gate {key!r} regressed: {cur[key]:.3g}x vs baseline "
                f"{base[key]:.3g}x (floor {floor:.3g}x at "
                f"{threshold:.0%} tolerance)")
    for key in sorted(set(cur) - set(base)):
        if key in base_skipped:
            continue  # baseline machine declared it unmeasurable
        problems.append(f"gate {key!r} has no baseline entry "
                        f"(re-generate BENCH_PERF.json)")
    return problems


def write_report(report: dict, path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        report = json.load(fh)
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} != {SCHEMA_VERSION} "
            f"(re-generate with `python -m repro.perf`)")
    return report
