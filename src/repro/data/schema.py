"""Schemas, schema evolution, and agent-driven schema negotiation.

The paper names "dynamic schema evolution: how autonomous agents can
negotiate schema changes when encountering new experiment types without
manual intervention" as a critical research gap (§3.2).  Here a
:class:`Schema` is versioned and immutable; :meth:`Schema.evolve` derives
new versions; and :class:`SchemaNegotiator` automatically maps producer
records onto consumer expectations using aliases, unit conversions, and
defaults — failing loudly only when no safe mapping exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional


class SchemaError(Exception):
    """Validation or negotiation failure."""


@dataclass(frozen=True)
class FieldSpec:
    """One schema field.

    Attributes
    ----------
    name / unit:
        Canonical name and unit string.
    required:
        Whether validation demands the field.
    lo / hi:
        Optional physical range (validation + quality checks).
    aliases:
        Names other dialects use for the same quantity.
    """

    name: str
    unit: str = ""
    required: bool = True
    lo: Optional[float] = None
    hi: Optional[float] = None
    aliases: tuple[str, ...] = ()

    def in_range(self, value: float) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True


#: unit -> (canonical unit, conversion to canonical)
_UNIT_CONVERSIONS: dict[str, tuple[str, Callable[[float], float]]] = {
    "K": ("C", lambda v: v - 273.15),
    "F": ("C", lambda v: (v - 32.0) * 5.0 / 9.0),
    "min": ("s", lambda v: v * 60.0),
    "hr": ("s", lambda v: v * 3600.0),
    "ms": ("s", lambda v: v / 1000.0),
    "uL": ("mL", lambda v: v / 1000.0),
    "L": ("mL", lambda v: v * 1000.0),
    "A": ("nm", lambda v: v / 10.0),
    "um": ("nm", lambda v: v * 1000.0),
    "percent": ("fraction", lambda v: v / 100.0),
}


def convert_unit(value: float, from_unit: str, to_unit: str) -> float:
    """Convert between known units; identity when units already match."""
    if from_unit == to_unit:
        return value
    entry = _UNIT_CONVERSIONS.get(from_unit)
    if entry and entry[0] == to_unit:
        return entry[1](value)
    # Try the reverse direction via a linear probe of the table.
    rev = _UNIT_CONVERSIONS.get(to_unit)
    if rev and rev[0] == from_unit:
        # Invert an affine map y = a*x + b numerically.
        f = rev[1]
        b = f(0.0)
        a = f(1.0) - b
        return (value - b) / a
    raise SchemaError(f"no conversion {from_unit!r} -> {to_unit!r}")


@dataclass(frozen=True)
class Schema:
    """An immutable, versioned record schema."""

    name: str
    version: int = 1
    fields: tuple[FieldSpec, ...] = ()
    description: str = ""

    @property
    def schema_id(self) -> str:
        return f"{self.name}@{self.version}"

    def field(self, name: str) -> Optional[FieldSpec]:
        for f in self.fields:
            if f.name == name:
                return f
        return None

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    # -- validation --------------------------------------------------------------

    def validate(self, values: Mapping[str, Any]) -> list[str]:
        """Return a list of violations (empty = valid)."""
        problems = []
        for f in self.fields:
            if f.name not in values:
                if f.required:
                    problems.append(f"missing required field {f.name!r}")
                continue
            v = values[f.name]
            if not isinstance(v, (int, float)):
                problems.append(f"{f.name} is not numeric: {v!r}")
            elif not f.in_range(float(v)):
                problems.append(
                    f"{f.name}={v} outside [{f.lo}, {f.hi}]")
        return problems

    def is_valid(self, values: Mapping[str, Any]) -> bool:
        return not self.validate(values)

    # -- evolution -----------------------------------------------------------------

    def evolve(self, *, add: tuple[FieldSpec, ...] = (),
               drop: tuple[str, ...] = (),
               description: str = "") -> "Schema":
        """Derive the next version with fields added/removed."""
        kept = tuple(f for f in self.fields if f.name not in drop)
        clashes = {f.name for f in add} & {f.name for f in kept}
        if clashes:
            raise SchemaError(f"evolve would duplicate fields: {clashes}")
        return Schema(name=self.name, version=self.version + 1,
                      fields=kept + tuple(add),
                      description=description or self.description)

    def compatible_with(self, older: "Schema") -> bool:
        """Backward compatibility: can data valid under ``older`` satisfy us?

        True iff every field we *require* exists in the older schema (same
        name) — additions must be optional to stay compatible.
        """
        older_names = set(older.field_names())
        return all(f.name in older_names
                   for f in self.fields if f.required)


class SchemaRegistry:
    """All versions of all schemas known to a mesh node."""

    def __init__(self) -> None:
        self._schemas: dict[str, Schema] = {}

    def register(self, schema: Schema) -> Schema:
        if schema.schema_id in self._schemas:
            raise SchemaError(f"{schema.schema_id} already registered")
        self._schemas[schema.schema_id] = schema
        return schema

    def get(self, schema_id: str) -> Schema:
        try:
            return self._schemas[schema_id]
        except KeyError:
            raise SchemaError(f"unknown schema {schema_id!r}") from None

    def latest(self, name: str) -> Optional[Schema]:
        versions = [s for s in self._schemas.values() if s.name == name]
        return max(versions, key=lambda s: s.version) if versions else None

    def __contains__(self, schema_id: str) -> bool:
        return schema_id in self._schemas

    def __len__(self) -> int:
        return len(self._schemas)

    def schema_ids(self) -> list[str]:
        return sorted(self._schemas)


@dataclass
class FieldMapping:
    """How one consumer field is satisfied from producer data."""

    consumer_field: str
    producer_field: Optional[str] = None
    conversion: Optional[tuple[str, str]] = None  # (from_unit, to_unit)
    default: Optional[float] = None


class SchemaNegotiator:
    """Automatically maps producer records onto a consumer schema.

    Resolution order per consumer field: exact name match -> alias match
    -> unit-suffix match (``temperature_K`` satisfies ``temperature`` via
    K->C conversion) -> declared default -> failure if required.
    """

    def __init__(self, registry: Optional[SchemaRegistry] = None) -> None:
        self.registry = registry or SchemaRegistry()
        self.stats = {"negotiations": 0, "failures": 0}

    def negotiate(self, producer_fields: Mapping[str, str],
                  consumer: Schema,
                  defaults: Optional[Mapping[str, float]] = None
                  ) -> list[FieldMapping]:
        """Compute mappings for every consumer field.

        ``producer_fields`` maps field name -> unit ("" when unknown).
        Raises :class:`SchemaError` when a required field can't be mapped.
        """
        self.stats["negotiations"] += 1
        defaults = defaults or {}
        mappings: list[FieldMapping] = []
        for f in consumer.fields:
            mapping = self._map_field(f, producer_fields, defaults)
            if mapping is None:
                if f.required:
                    self.stats["failures"] += 1
                    raise SchemaError(
                        f"cannot satisfy required field {f.name!r} from "
                        f"producer fields {sorted(producer_fields)}")
                continue
            mappings.append(mapping)
        return mappings

    def _map_field(self, f: FieldSpec, producer: Mapping[str, str],
                   defaults: Mapping[str, float]) -> Optional[FieldMapping]:
        # 1. exact name
        if f.name in producer:
            unit = producer[f.name]
            conv = ((unit, f.unit) if unit and f.unit and unit != f.unit
                    else None)
            if conv is not None:
                convert_unit(0.0, *conv)  # raises if unconvertible
            return FieldMapping(f.name, f.name, conversion=conv)
        # 2. aliases
        for alias in f.aliases:
            if alias in producer:
                unit = producer[alias]
                conv = ((unit, f.unit) if unit and f.unit and unit != f.unit
                        else None)
                if conv is not None:
                    convert_unit(0.0, *conv)
                return FieldMapping(f.name, alias, conversion=conv)
        # 3. unit-suffix heuristics: field_K, field_min, ...
        for pname in producer:
            if "_" not in pname:
                continue
            stem, suffix = pname.rsplit("_", 1)
            if stem == f.name and suffix in _UNIT_CONVERSIONS:
                target = _UNIT_CONVERSIONS[suffix][0]
                if not f.unit or f.unit == target:
                    return FieldMapping(f.name, pname,
                                        conversion=(suffix, target))
        # 4. defaults
        if f.name in defaults:
            return FieldMapping(f.name, None, default=defaults[f.name])
        return None

    @staticmethod
    def apply(mappings: list[FieldMapping],
              values: Mapping[str, Any]) -> dict[str, float]:
        """Transform producer values into consumer-shaped values."""
        out: dict[str, float] = {}
        for m in mappings:
            if m.producer_field is None:
                out[m.consumer_field] = float(m.default)  # type: ignore[arg-type]
                continue
            if m.producer_field not in values:
                continue
            v = float(values[m.producer_field])
            if m.conversion is not None:
                v = convert_unit(v, *m.conversion)
            out[m.consumer_field] = v
        return out
