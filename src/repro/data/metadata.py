"""AI-driven metadata extraction (milestone M5, experiment E8).

"Develop AI-driven metadata systems with automated annotation of
experimental data in multiple domains, achieving high accuracy without
human intervention."

The :class:`MetadataExtractor` plays the trained annotation model: it sees
only the heterogeneous *raw* payloads instruments emit (spectra,
diffraction patterns, micrographs, plate maps, free-form dicts) and infers
technique, quantities, and units.  It is a deterministic
feature-recognizer — structure shapes, key vocabularies, unit suffixes —
so extraction accuracy is measurable against the known ground truth
carried by the producing instrument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

#: key-substring -> (canonical quantity, unit)
_KEY_VOCABULARY: dict[str, tuple[str, str]] = {
    "plqy": ("plqy", "fraction"),
    "quantum_yield": ("plqy", "fraction"),
    "emission": ("emission_nm", "nm"),
    "wavelength": ("emission_nm", "nm"),
    "crystallinity": ("crystallinity", "fraction"),
    "uniformity": ("uniformity", "fraction"),
    "grain": ("grain_density", "1/um^2"),
    "conductivity": ("conductivity", "S/cm"),
    "gfa": ("gfa", "fraction"),
    "temperature": ("temperature", "C"),
    "volume": ("volume", "mL"),
}

_UNIT_SUFFIXES = {"_K": "K", "_C": "C", "_F": "F", "_nm": "nm", "_min": "min",
                  "_s": "s", "_hr": "hr", "_uL": "uL", "_mL": "mL"}


@dataclass
class Annotation:
    """The extractor's structured description of one payload."""

    technique: str = "unknown"
    quantities: dict[str, str] = field(default_factory=dict)  # name -> unit
    array_shapes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    confidence: float = 0.0
    evidence: list[str] = field(default_factory=list)

    def as_metadata(self) -> dict[str, Any]:
        return {"technique": self.technique,
                "quantities": dict(self.quantities),
                "annotation_confidence": self.confidence}


class MetadataExtractor:
    """Structure- and vocabulary-based payload annotation.

    Parameters
    ----------
    min_confidence:
        Annotations below this confidence report technique "unknown"
        (precision/recall trade-off knob swept by the E8 ablation).
    """

    def __init__(self, min_confidence: float = 0.3) -> None:
        self.min_confidence = min_confidence
        self.stats = {"extractions": 0, "unknowns": 0}

    # -- entry point --------------------------------------------------------------

    def extract(self, raw: Any,
                values: Optional[Mapping[str, Any]] = None) -> Annotation:
        """Annotate one raw payload (plus scalar values, when available)."""
        self.stats["extractions"] += 1
        ann = Annotation()
        self._walk(raw, ann, path="raw")
        if values:
            for key in values:
                self._classify_key(str(key), ann)
        ann.technique, tech_conf = self._infer_technique(ann)
        quantity_conf = min(1.0, 0.25 * len(ann.quantities))
        ann.confidence = round(0.65 * tech_conf + 0.35 * quantity_conf, 4)
        if ann.confidence < self.min_confidence:
            ann.technique = "unknown"
        if ann.technique == "unknown":
            self.stats["unknowns"] += 1
        return ann

    # -- payload walking ----------------------------------------------------------------

    def _walk(self, obj: Any, ann: Annotation, path: str,
              depth: int = 0) -> None:
        if depth > 8:
            return
        if isinstance(obj, np.ndarray):
            ann.array_shapes[path] = tuple(obj.shape)
            return
        if isinstance(obj, Mapping):
            for k, v in obj.items():
                self._classify_key(str(k), ann)
                self._walk(v, ann, f"{path}.{k}", depth + 1)
            return
        if isinstance(obj, (list, tuple)):
            # (key, value)-pair style payloads (custom-lab dialect).
            for item in obj:
                if (isinstance(item, (list, tuple)) and len(item) == 2
                        and isinstance(item[0], str)):
                    self._classify_key(item[0], ann)
                else:
                    self._walk(item, ann, path, depth + 1)

    def _classify_key(self, key: str, ann: Annotation) -> None:
        lowered = key.lower()
        unit = ""
        for suffix, u in _UNIT_SUFFIXES.items():
            if key.endswith(suffix):
                unit = u
                lowered = lowered[: -len(suffix)]
                break
        for fragment, (canonical, default_unit) in _KEY_VOCABULARY.items():
            if fragment in lowered:
                ann.quantities[canonical] = unit or default_unit
                ann.evidence.append(f"key:{key}")
                return

    # -- technique inference -----------------------------------------------------------------

    def _infer_technique(self, ann: Annotation) -> tuple[str, float]:
        """Vote on technique from structural + vocabulary evidence."""
        votes: dict[str, float] = {}

        def vote(tech: str, weight: float, why: str) -> None:
            votes[tech] = votes.get(tech, 0.0) + weight
            ann.evidence.append(f"{why}->{tech}")

        for path, shape in ann.array_shapes.items():
            name = path.rsplit(".", 1)[-1].lower()
            if "spectrum" in name or "counts" in name or "two_theta" in name:
                if "two_theta" in name or "counts" in name:
                    vote("powder-xrd", 0.6, f"array:{name}")
                else:
                    vote("photoluminescence", 0.6, f"array:{name}")
            elif len(shape) == 2 and shape[0] == shape[1]:
                vote("electron-microscopy", 0.7, f"square-image:{shape}")
            elif len(shape) == 2 and shape[0] == 2:
                # A (2, N) xy-pair array: some 1-D scan.
                vote("photoluminescence", 0.3, f"xy-array:{shape}")
        if "plqy" in ann.quantities or "emission_nm" in ann.quantities:
            vote("photoluminescence", 0.5, "quantity:optical")
        if "crystallinity" in ann.quantities:
            vote("powder-xrd", 0.5, "quantity:crystallinity")
        if "uniformity" in ann.quantities or "grain_density" in ann.quantities:
            vote("electron-microscopy", 0.5, "quantity:texture")
        for e in list(ann.evidence):
            if "plate" in e.lower() or "deck" in e.lower():
                vote("liquid-handling", 0.8, "vocab:plate")
        if not votes:
            return "unknown", 0.0
        tech = max(sorted(votes), key=lambda t: votes[t])
        return tech, min(1.0, votes[tech])

#: Keys the walker treats as liquid-handling evidence.
for _k in ("plate", "deck_state", "transfers"):
    _KEY_VOCABULARY.setdefault(_k, (_k, ""))
