"""Facility-sharded discovery: the data plane of the 1000-lab mesh.

A single :class:`~repro.data.mesh.DiscoveryIndex` is fine for a handful
of laboratories, but the paper's premise is a *network*: at hundreds of
facilities one in-memory dict becomes both a scaling bottleneck and a
single administrative domain, which §3.2's federated-node architecture
explicitly rejects.  :class:`ShardedDiscoveryIndex` keeps the flat-index
API (so :class:`~repro.data.mesh.DataMeshNode` and
:class:`~repro.data.mesh.FederatedDataMesh` work unchanged) while
routing every entry to a per-facility shard:

- **Deterministic routing** — :func:`shard_for` hashes the facility name
  with CRC-32, never Python's salted ``hash()``, so two processes (or a
  replayed campaign) place every record identically.
- **Targeted queries stay on one shard** — a ``site=`` filter routes to
  that facility's shard; a ``record_id=`` lookup goes through the
  home-shard map.  Only filter-free scans fan out to every shard.
- **Secondary indexes per shard** — each shard is a full
  :class:`~repro.data.mesh.DiscoveryIndex` with inverted postings, so a
  cross-shard ``metadata.technique=`` query is K set probes, not one
  O(total-records) scan.

Index-replication lag is a property of the *publishing node*
(:meth:`~repro.data.mesh.DataMeshNode.ingest` schedules the publish),
so sharding preserves it untouched.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Optional

from repro.data.mesh import DiscoveryIndex

__all__ = ["shard_for", "ShardedDiscoveryIndex"]


def shard_for(site: str, n_shards: int) -> int:
    """Deterministic facility -> shard routing (stable across processes).

    CRC-32 of the UTF-8 site name modulo the shard count: cheap, seeded
    by nothing, and identical in every worker — the property the
    parallel-equivalence CI job depends on.
    """
    if n_shards < 1:
        raise ValueError(f"need n_shards >= 1, got {n_shards}")
    return zlib.crc32(site.encode("utf-8")) % n_shards


class ShardedDiscoveryIndex:
    """N per-facility :class:`DiscoveryIndex` shards behind the flat API.

    Parameters
    ----------
    n_shards:
        Number of shards.  Facilities map to shards via
        :func:`shard_for`; several facilities may share a shard (that is
        the "facility-boundary" sharding the roadmap asks for — a shard
        is an administrative domain, not necessarily one lab).
    """

    def __init__(self, n_shards: int = 16) -> None:
        if n_shards < 1:
            raise ValueError(f"need n_shards >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.shards = [DiscoveryIndex() for _ in range(n_shards)]
        self._home: dict[str, int] = {}  # record_id -> shard number
        self._local = {"fanout_queries": 0, "routed_queries": 0}

    # -- routing -----------------------------------------------------------

    def shard_id(self, site: str) -> int:
        return shard_for(site, self.n_shards)

    def shard_of(self, site: str) -> DiscoveryIndex:
        """The shard holding entries for ``site``."""
        return self.shards[self.shard_id(site)]

    # -- flat-index API ----------------------------------------------------

    def publish(self, entry: dict[str, Any]) -> None:
        shard = self.shard_id(entry.get("site") or "")
        record_id = entry["record_id"]
        old = self._home.get(record_id)
        if old is not None and old != shard:
            # A re-published record that moved site: drop the stale copy.
            self.shards[old].remove(record_id)
        self._home[record_id] = shard
        self.shards[shard].publish(entry)

    def remove(self, record_id: str) -> None:
        shard = self._home.pop(record_id, None)
        if shard is not None:
            self.shards[shard].remove(record_id)

    def __len__(self) -> int:
        return len(self._home)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._home

    def get(self, record_id: str) -> Optional[dict[str, Any]]:
        """Primary-key lookup via the home-shard map (no fan-out)."""
        shard = self._home.get(record_id)
        if shard is None:
            self._local["routed_queries"] += 1
            return None
        return self.shards[shard].get(record_id)

    def query(self, predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
              **equals: Any) -> list[dict[str, Any]]:
        """Same contract as :meth:`DiscoveryIndex.query`, shard-routed.

        ``site=`` filters (and ``record_id=`` lookups) touch exactly one
        shard; everything else fans out and merges the per-shard results
        (each already sorted by record id).
        """
        if "record_id" in equals:
            self._local["routed_queries"] += 1
            shard = self._home.get(equals["record_id"])
            if shard is None:
                return []
            return self.shards[shard].query(predicate=predicate, **equals)
        if "site" in equals:
            self._local["routed_queries"] += 1
            return self.shard_of(equals["site"]).query(predicate=predicate,
                                                       **equals)
        self._local["fanout_queries"] += 1
        out: list[dict[str, Any]] = []
        for shard in self.shards:
            out.extend(shard.query(predicate=predicate, **equals))
        return sorted(out, key=lambda e: e["record_id"])

    # -- shard fan-in ------------------------------------------------------

    def merge_from(self, other: "ShardedDiscoveryIndex") -> None:
        """Fold a worker's index into this one after a fan-out phase.

        Requires equal shard counts: :func:`shard_for` is deterministic,
        so same-shaped indexes place every record identically and the
        merge is a per-shard :meth:`DiscoveryIndex.merge_from` plus a
        home-map union (incoming side wins conflicts, like a repeated
        publish).
        """
        if other.n_shards != self.n_shards:
            raise ValueError(
                f"cannot merge a {other.n_shards}-shard index into a "
                f"{self.n_shards}-shard one — shard routing would differ")
        for ours, theirs in zip(self.shards, other.shards):
            ours.merge_from(theirs)
        self._home.update(other._home)
        for key, value in other._local.items():
            self._local[key] = self._local.get(key, 0) + value

    def state(self) -> dict[str, Any]:
        """Deterministic snapshot: shard shape plus per-shard states."""
        return {"n_shards": self.n_shards,
                "shards": [shard.state() for shard in self.shards],
                "local": dict(self._local)}

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Aggregate of every shard's counters plus routing counters."""
        totals = {"publishes": 0, "queries": 0,
                  "index_hits": 0, "index_misses": 0}
        for shard in self.shards:
            for key in totals:
                totals[key] += shard.stats[key]
        totals.update(self._local)
        return totals

    def shard_sizes(self) -> list[int]:
        """Entries per shard (balance diagnostics for the benchmarks)."""
        return [len(shard) for shard in self.shards]
