"""Pass-by-reference data movement (§3.2, ref [18]).

"Systems like ProxyStore enable efficient data transfer through
pass-by-reference semantics ... allowing large datasets to be shared
without duplicating storage."

A :class:`ProxyStore` at each site holds large payloads; :meth:`put`
returns a tiny :class:`Proxy` that travels in messages for ~100 bytes.
Resolving a proxy at another site pays the full transfer exactly once and
caches thereafter — the behaviour E9's bulk-movement column measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.comm.serialization import estimate_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class Proxy:
    """A lightweight reference to an object held in some site's store."""

    key: str
    home_site: str
    size_bytes: float

    def wire_size(self) -> float:
        """What the proxy itself costs to ship (vs. the object)."""
        return 96.0


class ProxyStore:
    """One site's object store participating in the federation.

    Parameters
    ----------
    sim, network:
        Kernel and transport (resolution of remote proxies transfers the
        actual bytes over the network).
    site:
        The site this store serves.
    peers:
        Shared mapping of site name -> ProxyStore; all stores in a
        federation share one dict so proxies resolve anywhere.
    """

    def __init__(self, sim: "Simulator", network: "Network", site: str,
                 peers: dict[str, "ProxyStore"]) -> None:
        self.sim = sim
        self.network = network
        self.site = site
        self._objects: dict[str, Any] = {}
        self._cache: dict[str, Any] = {}
        peers[site] = self
        self._peers = peers
        self.stats = {"puts": 0, "local_hits": 0, "cache_hits": 0,
                      "remote_fetches": 0, "bytes_fetched": 0.0}

    def put(self, obj: Any) -> Proxy:
        """Store an object locally; returns its proxy."""
        # One world-wide "proxy" stream: keys stay unique across every
        # store in the federation and identical across same-seed worlds.
        key = self.sim.ids.label("proxy")
        self._objects[key] = obj
        self.stats["puts"] += 1
        return Proxy(key=key, home_site=self.site,
                     size_bytes=estimate_size(obj))

    def evict(self, proxy: Proxy) -> None:
        """Drop the object (owner only) — later resolutions fail."""
        self._objects.pop(proxy.key, None)

    def resolve(self, proxy: Proxy):
        """Generator: materialize a proxy's object at this site.

        Local and previously-fetched objects return instantly; remote
        objects pay one WAN transfer of the full payload size.
        """
        if proxy.home_site == self.site:
            self.stats["local_hits"] += 1
            return self._fetch_home(proxy)
        if proxy.key in self._cache:
            self.stats["cache_hits"] += 1
            return self._cache[proxy.key]
        home = self._peers.get(proxy.home_site)
        if home is None:
            raise KeyError(f"no store at site {proxy.home_site!r}")
        # Request (small) + bulk response (the object).
        yield self.network.send(self.site, proxy.home_site,
                                proxy.wire_size())
        obj = home._fetch_home(proxy)
        yield self.network.send(proxy.home_site, self.site, proxy.size_bytes)
        self._cache[proxy.key] = obj
        self.stats["remote_fetches"] += 1
        self.stats["bytes_fetched"] += proxy.size_bytes
        return obj

    def _fetch_home(self, proxy: Proxy) -> Any:
        try:
            return self._objects[proxy.key]
        except KeyError:
            raise KeyError(
                f"{proxy.key} was evicted from {self.site}") from None

    def holds(self, proxy: Proxy) -> bool:
        return proxy.key in self._objects or proxy.key in self._cache
