"""Time-travel campaign replay from spilled observability shards.

A recorded campaign is a directory — a :class:`CampaignArchive` — holding
one ``manifest.json`` plus per-seed shards:

- ``trace-<seed>.jsonl`` — the incremental JSONL trace spill a bounded
  :class:`~repro.obs.trace.Tracer` streamed while the world ran;
- ``provenance-<seed>.json`` — the merged federation provenance dump.

The manifest pins everything determinism-relevant: world kind, config,
seeds, and each world's canonical SHA-256 decision hash.  That makes two
distinct replays possible:

- **Timeline reconstruction** (:class:`ReplayTimeline`) — merge the
  spilled trace shards into one cross-shard event timeline, ordered by
  ``(t, shard, seq)``, and walk what happened without re-running
  anything.
- **Re-driving** (:func:`replay_campaign`) — re-run the recorded world
  entrypoints from the archived ``(world, seed, config)`` triples and
  compare decision hashes byte-for-byte.  World entrypoints exclude the
  spill side-channel paths from their hashed return value, so a replay
  without spill digests identically to the recording iff the run is
  deterministic.

``python -m repro.scale --record DIR`` writes an archive;
``--replay DIR`` re-drives one.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Iterator, Optional

from repro.data.provenance import ProvenanceGraph
from repro.obs.export import load_jsonl
from repro.obs.trace import TraceEvent

__all__ = ["ARCHIVE_VERSION", "MANIFEST_NAME", "CampaignArchive",
           "ReplayTimeline", "ReplayMismatch", "record_campaign",
           "replay_campaign"]

ARCHIVE_VERSION = 1
MANIFEST_NAME = "manifest.json"


class ReplayMismatch(AssertionError):
    """A re-driven world's decision hash diverged from the recording."""


class CampaignArchive:
    """One recorded campaign on disk: manifest + per-seed shards."""

    def __init__(self, root: str) -> None:
        self.root = root

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def trace_path(self, seed: int) -> str:
        return os.path.join(self.root, f"trace-{int(seed)}.jsonl")

    def provenance_path(self, seed: int) -> str:
        return os.path.join(self.root, f"provenance-{int(seed)}.json")

    def exists(self) -> bool:
        return os.path.isfile(self.manifest_path)

    # -- manifest ----------------------------------------------------------

    def write_manifest(self, manifest: dict[str, Any]) -> str:
        os.makedirs(self.root, exist_ok=True)
        with open(self.manifest_path, "w", encoding="utf-8",
                  newline="\n") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return self.manifest_path

    def load_manifest(self) -> dict[str, Any]:
        with open(self.manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        version = manifest.get("version")
        if version != ARCHIVE_VERSION:
            raise ValueError(
                f"unsupported archive version {version!r} at {self.root} "
                f"(this build reads version {ARCHIVE_VERSION})")
        return manifest

    @property
    def seeds(self) -> list[int]:
        return [int(s) for s in self.load_manifest()["seeds"]]

    # -- shard access ------------------------------------------------------

    def trace_events(self, seed: int) -> list[TraceEvent]:
        """Spilled trace shard for one seed ([] when none was recorded)."""
        path = self.trace_path(seed)
        if not os.path.isfile(path):
            return []
        return load_jsonl(path)

    def provenance(self, seed: int) -> Optional[ProvenanceGraph]:
        """Provenance shard for one seed (None when none was recorded)."""
        path = self.provenance_path(seed)
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return ProvenanceGraph.from_dict(json.load(fh))

    def timeline(self, seeds: Optional[Iterable[int]] = None
                 ) -> "ReplayTimeline":
        """Merged cross-shard timeline (all recorded seeds by default)."""
        chosen = list(seeds) if seeds is not None else self.seeds
        shards = {f"seed-{s}": self.trace_events(s) for s in chosen}
        return ReplayTimeline.from_shards(shards)

    def summary(self) -> dict[str, Any]:
        manifest = self.load_manifest()
        return {
            "world": manifest["world"],
            "seeds": [int(s) for s in manifest["seeds"]],
            "combined": manifest["combined"],
            "trace_events": {str(s): len(self.trace_events(int(s)))
                             for s in manifest["seeds"]},
        }


class ReplayTimeline:
    """A cross-shard event timeline reconstructed from trace spills.

    Events are ordered by ``(t, shard, seq)`` — simulation time first,
    then shard label, then the per-shard sequence number — which is a
    total, deterministic order: ties in simulated time between shards
    resolve by name, and within a shard ``seq`` already totally orders
    the stream.
    """

    def __init__(self, entries: "list[tuple[float, str, TraceEvent]]") -> None:
        self.entries = sorted(entries, key=lambda e: (e[0], e[1], e[2].seq))

    @classmethod
    def from_shards(cls, shards: "dict[str, list[TraceEvent]]"
                    ) -> "ReplayTimeline":
        entries = [(ev.t, shard, ev)
                   for shard in sorted(shards)
                   for ev in shards[shard]]
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> "Iterator[tuple[float, str, TraceEvent]]":
        return iter(self.entries)

    def between(self, t0: float, t1: float) -> "ReplayTimeline":
        """The slice of the timeline with ``t0 <= t < t1`` (time travel)."""
        return ReplayTimeline([e for e in self.entries if t0 <= e[0] < t1])

    def named(self, name: str) -> "ReplayTimeline":
        return ReplayTimeline([e for e in self.entries if e[2].name == name])

    def counts(self) -> dict[str, int]:
        """Event-name histogram over the whole timeline."""
        out: dict[str, int] = {}
        for _, _, ev in self.entries:
            out[ev.name] = out.get(ev.name, 0) + 1
        return dict(sorted(out.items()))

    @property
    def span_s(self) -> float:
        """Simulated time covered by the timeline."""
        if not self.entries:
            return 0.0
        return self.entries[-1][0] - self.entries[0][0]


# -- record / re-drive -----------------------------------------------------

def _world_entrypoint(world: str):
    # Deferred: repro.scale imports repro.data (worlds build meshes), so a
    # top-level import here would be circular.
    from repro.scale.worlds import WORLD_KINDS
    try:
        return WORLD_KINDS[world]
    except KeyError:
        raise ValueError(f"unknown world kind {world!r}; "
                         f"have {sorted(WORLD_KINDS)}") from None


def record_campaign(world: str, seeds: "list[int]", config: dict,
                    root: str, *, workers: Optional[int] = None
                    ) -> dict[str, Any]:
    """Run a multi-seed sweep and archive it for later replay.

    Each seed's config gains two side-channel keys — ``trace_spill`` and
    ``provenance_out`` — pointing into the archive; worlds that support
    spilling (``mesh``) stream their shards there, others ignore the keys
    and the archive simply has no shard files.  Returns the manifest
    (also written to ``<root>/manifest.json``).
    """
    from repro.scale.runner import WorldRunner, WorldSpec

    archive = CampaignArchive(root)
    os.makedirs(root, exist_ok=True)
    entrypoint = _world_entrypoint(world)
    specs = [WorldSpec(seed=int(s), entrypoint=entrypoint,
                       config=dict(config,
                                   trace_spill=archive.trace_path(s),
                                   provenance_out=archive.provenance_path(s)))
             for s in seeds]
    batch = WorldRunner(workers).run(specs)
    manifest = {
        "version": ARCHIVE_VERSION,
        "world": world,
        "config": dict(config),
        "seeds": [int(s) for s in seeds],
        "hashes": {str(r.seed): r.decision_hash for r in batch},
        "combined": batch.combined_hash,
        "shards": {
            str(r.seed): {
                "trace": (os.path.basename(archive.trace_path(r.seed))
                          if os.path.isfile(archive.trace_path(r.seed))
                          else None),
                "provenance": (
                    os.path.basename(archive.provenance_path(r.seed))
                    if os.path.isfile(archive.provenance_path(r.seed))
                    else None),
            } for r in batch
        },
    }
    archive.write_manifest(manifest)
    return manifest


def replay_campaign(root: str, *, workers: Optional[int] = None,
                    strict: bool = False) -> dict[str, Any]:
    """Re-drive an archived campaign and compare decision hashes.

    Runs the recorded ``(world, seed, config)`` triples afresh — without
    the spill side-channels — and checks every seed's decision hash
    byte-for-byte against the manifest.  Returns a report; with
    ``strict=True`` a mismatch raises :class:`ReplayMismatch` instead.
    """
    from repro.scale.runner import WorldRunner, WorldSpec

    archive = CampaignArchive(root)
    manifest = archive.load_manifest()
    entrypoint = _world_entrypoint(manifest["world"])
    seeds = [int(s) for s in manifest["seeds"]]
    specs = [WorldSpec(seed=s, entrypoint=entrypoint,
                       config=dict(manifest["config"])) for s in seeds]
    batch = WorldRunner(workers).run(specs)

    mismatches = []
    for result in batch:
        recorded = manifest["hashes"][str(result.seed)]
        if result.decision_hash != recorded:
            mismatches.append({"seed": result.seed,
                               "recorded": recorded,
                               "replayed": result.decision_hash})
    report = {
        "ok": not mismatches,
        "world": manifest["world"],
        "seeds": seeds,
        "mismatches": mismatches,
        "combined_recorded": manifest["combined"],
        "combined_replayed": batch.combined_hash,
    }
    if strict and mismatches:
        detail = "; ".join(
            f"seed {m['seed']}: recorded {m['recorded'][:12]} != "
            f"replayed {m['replayed'][:12]}" for m in mismatches)
        raise ReplayMismatch(f"replay diverged from recording: {detail}")
    return report
