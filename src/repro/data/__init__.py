"""Agent-driven data management (paper dimension 2, §3.2).

Implements the full stack the paper's milestones call for: typed records
and evolvable schemas (:mod:`repro.data.record`, :mod:`repro.data.schema`),
AI-driven metadata extraction (M5, :mod:`repro.data.metadata`), FAIR
scoring and autonomous governance (M6, :mod:`repro.data.fair`),
PROV-O-style provenance (:mod:`repro.data.provenance`), a federated data
mesh with cross-institutional discovery (M6, :mod:`repro.data.mesh`),
near-real-time stream processing with quality assessment (M7,
:mod:`repro.data.quality`, :mod:`repro.data.streams`), and pass-by-reference
data movement (:mod:`repro.data.proxystore`).
"""

from repro.data.fair import FairGovernor, fair_score
from repro.data.mesh import DataMeshNode, DiscoveryIndex, FederatedDataMesh
from repro.data.metadata import Annotation, MetadataExtractor
from repro.data.provenance import ProvenanceGraph
from repro.data.replay import (CampaignArchive, ReplayTimeline,
                               record_campaign, replay_campaign)
from repro.data.shard import ShardedDiscoveryIndex, shard_for
from repro.data.proxystore import Proxy, ProxyStore
from repro.data.quality import AnomalyDetector, QualityAssessor, QualityReport
from repro.data.record import DataRecord
from repro.data.schema import FieldSpec, Schema, SchemaNegotiator, SchemaRegistry
from repro.data.streams import StreamProcessor

__all__ = [
    "Annotation",
    "AnomalyDetector",
    "CampaignArchive",
    "DataMeshNode",
    "DataRecord",
    "DiscoveryIndex",
    "FairGovernor",
    "FederatedDataMesh",
    "FieldSpec",
    "MetadataExtractor",
    "ProvenanceGraph",
    "Proxy",
    "ProxyStore",
    "QualityAssessor",
    "QualityReport",
    "ReplayTimeline",
    "Schema",
    "SchemaNegotiator",
    "SchemaRegistry",
    "ShardedDiscoveryIndex",
    "StreamProcessor",
    "fair_score",
    "record_campaign",
    "replay_campaign",
    "shard_for",
]
