"""FAIR scoring and autonomous FAIR governance (M6, refs [34, 21]).

:func:`fair_score` grades one record against concrete, checkable proxies
of the FAIR principles.  :class:`FairGovernor` is the "agent that actively
enforces FAIR in near real time": it audits records as they land in a mesh
node, auto-annotates what it can (via the metadata extractor), assigns
licenses from institutional defaults, and reports compliance over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.data.metadata import MetadataExtractor
from repro.data.record import DataRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.provenance import ProvenanceGraph
    from repro.data.schema import SchemaRegistry


@dataclass
class FairReport:
    """Per-principle subscores in [0, 1] plus the overall mean."""

    findable: float
    accessible: float
    interoperable: float
    reusable: float

    @property
    def overall(self) -> float:
        return (self.findable + self.accessible + self.interoperable
                + self.reusable) / 4.0

    def gaps(self) -> list[str]:
        out = []
        for name in ("findable", "accessible", "interoperable", "reusable"):
            if getattr(self, name) < 1.0:
                out.append(name)
        return out


def fair_score(record: DataRecord, *, indexed: bool = False,
               schemas: Optional["SchemaRegistry"] = None,
               provenance: Optional["ProvenanceGraph"] = None) -> FairReport:
    """Grade a record's FAIRness.

    - **Findable**: has a global id (always true by construction), rich
      metadata, and presence in a discovery index.
    - **Accessible**: a retrievable payload and a declared access class.
    - **Interoperable**: a registered schema and units on its quantities.
    - **Reusable**: license, provenance entity with good completeness, and
      a quality assessment.
    """
    findable = 0.4  # record_id exists by construction
    if record.metadata.get("technique") not in (None, "", "unknown"):
        findable += 0.3
    if indexed:
        findable += 0.3

    accessible = 0.5 if record.raw is not None or record.values else 0.0
    if record.sensitivity:
        accessible += 0.5

    interoperable = 0.0
    if record.schema_id and (schemas is None or record.schema_id in schemas):
        interoperable += 0.6
    units = record.metadata.get("units") or record.metadata.get("quantities")
    if units:
        interoperable += 0.4

    reusable = 0.0
    if record.license:
        reusable += 0.4
    if provenance is not None and record.provenance_id:
        reusable += 0.3 * provenance.completeness(record.provenance_id)
    elif record.provenance_id:
        reusable += 0.15
    if record.quality is not None:
        reusable += 0.3

    clamp = lambda v: min(1.0, round(v, 6))
    return FairReport(findable=clamp(findable), accessible=clamp(accessible),
                      interoperable=clamp(interoperable),
                      reusable=clamp(reusable))


class FairGovernor:
    """Autonomous FAIR-compliance agent attached to a mesh node.

    On :meth:`audit`, the governor scores the record, then repairs what it
    can without a human:

    - missing technique metadata -> run the metadata extractor;
    - missing license -> apply the institutional default;
    - missing schema -> adopt the best matching registered schema.

    The before/after scores feed E9's governance curve.
    """

    def __init__(self, extractor: Optional[MetadataExtractor] = None,
                 default_license: str = "CC-BY-4.0") -> None:
        self.extractor = extractor or MetadataExtractor()
        self.default_license = default_license
        self.history: list[tuple[float, float, float]] = []  # (t, before, after)
        self.stats = {"audits": 0, "repairs": 0}

    def audit(self, record: DataRecord, *, time: float = 0.0,
              indexed: bool = False,
              schemas: Optional["SchemaRegistry"] = None,
              provenance: Optional["ProvenanceGraph"] = None) -> FairReport:
        """Score, repair, re-score one record; returns the final report."""
        self.stats["audits"] += 1
        before = fair_score(record, indexed=indexed, schemas=schemas,
                            provenance=provenance).overall
        repaired = False

        if record.metadata.get("technique") in (None, "", "unknown"):
            ann = self.extractor.extract(record.raw, record.values)
            if ann.technique != "unknown":
                record.metadata.update(ann.as_metadata())
                repaired = True
        if not record.license:
            record.license = self.default_license
            repaired = True
        if not record.schema_id and schemas is not None:
            match = self._best_schema(record, schemas)
            if match is not None:
                record.schema_id = match
                repaired = True

        if repaired:
            self.stats["repairs"] += 1
        report = fair_score(record, indexed=indexed, schemas=schemas,
                            provenance=provenance)
        self.history.append((time, before, report.overall))
        return report

    @staticmethod
    def _best_schema(record: DataRecord,
                     schemas: "SchemaRegistry") -> Optional[str]:
        """Adopt the registered schema covering the most record fields."""
        best_id, best_cover = None, 0
        for schema_id in schemas.schema_ids():
            schema = schemas.get(schema_id)
            cover = sum(1 for f in schema.fields if f.name in record.values)
            required_ok = all(f.name in record.values
                              for f in schema.fields if f.required)
            if required_ok and cover > best_cover:
                best_id, best_cover = schema_id, cover
        return best_id

    def mean_improvement(self) -> float:
        """Average FAIR-score gain per audited record."""
        if not self.history:
            return 0.0
        return sum(after - before for _, before, after in self.history) \
            / len(self.history)
