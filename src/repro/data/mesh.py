"""Federated data mesh with cross-institutional discovery (milestone M6).

"Priority should be given to implementing data mesh architectures in which
each laboratory maintains a federated node with standardized interfaces,
complemented by global discovery indices" (§3.2).

Records live at their producing site's :class:`DataMeshNode` (data
sovereignty); only metadata-only *index entries* replicate to the shared
:class:`DiscoveryIndex`.  Cross-site fetches go over the simulated WAN and
through the zero-trust gateway, with ABAC deciding whether e.g. a
``restricted`` record may leave its institution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.comm.message import Envelope, Message, Performative
from repro.data.fair import FairGovernor, fair_score
from repro.data.provenance import ProvenanceGraph
from repro.data.record import DataRecord
from repro.data.schema import SchemaRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class AccessDenied(Exception):
    """ABAC refused a cross-institutional data access."""


#: Entry fields served by inverted secondary indexes.  Dotted keys reach
#: into nested dicts exactly as :meth:`DiscoveryIndex.query` filters do.
INDEXED_FIELDS = ("schema_id", "site", "institution", "source",
                  "metadata.technique")


def _field_value(entry: dict[str, Any], key: str) -> Any:
    """Resolve a (possibly dotted) filter key against one index entry."""
    value: Any = entry
    for part in key.split("."):
        value = value.get(part) if isinstance(value, dict) else None
        if value is None:
            break
    return value


def _entry_matches(entry: dict[str, Any], equals: dict[str, Any],
                   predicate: Optional[Callable[[dict[str, Any]], bool]],
                   ) -> bool:
    for key, want in equals.items():
        if _field_value(entry, key) != want:
            return False
    return predicate is None or predicate(entry)


class DiscoveryIndex:
    """The global, metadata-only index all mesh nodes share.

    ``record_id`` lookups hit the primary dict directly, and equality
    filters on :data:`INDEXED_FIELDS` are served from inverted postings
    (value -> record ids) instead of scanning every entry.  ``stats``
    counts how often queries were answered from an index
    (``index_hits``) versus falling back to a full scan
    (``index_misses``).
    """

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self._inverted: dict[str, dict[Any, set[str]]] = {
            f: {} for f in INDEXED_FIELDS}
        self.stats = {"publishes": 0, "queries": 0,
                      "index_hits": 0, "index_misses": 0}

    def publish(self, entry: dict[str, Any]) -> None:
        self._insert(entry)
        self.stats["publishes"] += 1

    def _insert(self, entry: dict[str, Any]) -> None:
        record_id = entry["record_id"]
        old = self._entries.get(record_id)
        if old is not None:
            self._unindex(old)
        self._entries[record_id] = entry
        for field in INDEXED_FIELDS:
            value = _field_value(entry, field)
            if value is not None:
                self._inverted[field].setdefault(value, set()).add(record_id)

    def merge_from(self, other: "DiscoveryIndex") -> None:
        """Fold another index into this one (shard fan-in).

        Entries merge in sorted record-id order with the incoming side
        winning conflicts — the same last-writer semantics as a repeated
        :meth:`publish` — and query/publish counters add, so merged
        stats equal what one unsharded index would have recorded.
        """
        for record_id in sorted(other._entries):
            self._insert(dict(other._entries[record_id]))
        for key, value in other.stats.items():
            self.stats[key] = self.stats.get(key, 0) + value

    def state(self) -> dict[str, Any]:
        """Deterministic snapshot (entries sorted by record id) for
        cross-shard comparison and replay verification."""
        return {"entries": [dict(self._entries[r])
                            for r in sorted(self._entries)],
                "stats": dict(self.stats)}

    def remove(self, record_id: str) -> None:
        entry = self._entries.pop(record_id, None)
        if entry is not None:
            self._unindex(entry)

    def _unindex(self, entry: dict[str, Any]) -> None:
        record_id = entry["record_id"]
        for field in INDEXED_FIELDS:
            value = _field_value(entry, field)
            postings = self._inverted[field].get(value)
            if postings is not None:
                postings.discard(record_id)
                if not postings:
                    del self._inverted[field][value]

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._entries

    def get(self, record_id: str) -> Optional[dict[str, Any]]:
        """Direct primary-key lookup (no scan); ``None`` when unknown."""
        entry = self._entries.get(record_id)
        key = "index_hits" if entry is not None else "index_misses"
        self.stats[key] += 1
        return entry

    def query(self, predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
              **equals: Any) -> list[dict[str, Any]]:
        """Find index entries by equality filters and/or a predicate.

        Dotted keys reach into ``metadata`` (e.g.
        ``query(**{"metadata.technique": "powder-xrd"})``).  A
        ``record_id=`` filter is a direct dict hit; filters on
        :data:`INDEXED_FIELDS` intersect inverted postings; only queries
        with no indexable filter at all scan every entry.
        """
        self.stats["queries"] += 1
        if "record_id" in equals:
            entry = self._entries.get(equals["record_id"])
            self.stats["index_hits"] += 1
            if entry is None:
                return []
            residual = {k: v for k, v in equals.items() if k != "record_id"}
            return [entry] if _entry_matches(entry, residual, predicate) \
                else []

        candidates: Optional[set[str]] = None
        residual: dict[str, Any] = {}
        for key, want in equals.items():
            postings_by_value = self._inverted.get(key)
            if postings_by_value is None:
                residual[key] = want
                continue
            postings = postings_by_value.get(want, set())
            candidates = postings if candidates is None \
                else candidates & postings
        if candidates is None:
            self.stats["index_misses"] += 1
            pool: Any = self._entries
        else:
            self.stats["index_hits"] += 1
            pool = candidates
        out = []
        for record_id in sorted(pool):
            entry = self._entries[record_id]
            if _entry_matches(entry, residual, predicate):
                out.append(entry)
        return out


class DataMeshNode:
    """One laboratory's federated data node.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    site / institution:
        Identity of the hosting lab.
    index:
        The shared :class:`DiscoveryIndex`.
    schemas:
        Local schema registry (a copy of community schemas, typically).
    governor:
        Optional FAIR governor auditing records on ingest.
    gateway:
        Optional zero-trust gateway; cross-site fetches are verified.
    index_latency_s:
        Asynchronous delay before a published record is discoverable
        (index replication lag).
    """

    def __init__(self, sim: "Simulator", network: "Network", site: str,
                 institution: str, index: DiscoveryIndex,
                 schemas: Optional[SchemaRegistry] = None,
                 governor: Optional[FairGovernor] = None,
                 gateway: Any = None,
                 index_latency_s: float = 0.5) -> None:
        self.sim = sim
        self.network = network
        self.site = site
        self.institution = institution
        self.index = index
        self.schemas = schemas or SchemaRegistry()
        self.governor = governor
        self.gateway = gateway
        self.provenance = ProvenanceGraph()
        self.index_latency_s = index_latency_s
        self._records: dict[str, DataRecord] = {}
        self.stats = {"ingested": 0, "served": 0, "denied": 0}

    # -- ingest -----------------------------------------------------------------

    def ingest(self, record: DataRecord) -> DataRecord:
        """Store a locally-produced record and schedule index publication."""
        record.site = record.site or self.site
        record.institution = record.institution or self.institution
        if self.governor is not None:
            self.governor.audit(record, time=self.sim.now,
                                indexed=False, schemas=self.schemas,
                                provenance=self.provenance)
        self._records[record.record_id] = record
        self.stats["ingested"] += 1
        entry = record.index_entry()
        # Index replication is asynchronous: discoverable after a lag.
        self.sim.schedule_callback(self.index_latency_s,
                                   lambda: self.index.publish(entry))
        return record

    def normalize_and_ingest(self, record: DataRecord, schema_name: str,
                             producer_units: Optional[dict[str, str]] = None
                             ) -> DataRecord:
        """Ingest a foreign-dialect record by negotiating onto a schema.

        The §3.2 "implicit schema" path: the producer's field names/units
        need not match ours — the negotiator maps via aliases and unit
        suffixes (``temperature_K`` satisfies ``temperature``) and the
        values are rewritten in canonical form before ingest.  Raises
        :class:`~repro.data.schema.SchemaError` when required fields
        cannot be satisfied.
        """
        from repro.data.schema import SchemaNegotiator
        schema = self.schemas.latest(schema_name)
        if schema is None:
            from repro.data.schema import SchemaError
            raise SchemaError(f"no schema named {schema_name!r} registered")
        units = producer_units or record.metadata.get("units") or {}
        producer_fields = {k: units.get(k, "") for k in record.values}
        negotiator = SchemaNegotiator(self.schemas)
        mappings = negotiator.negotiate(producer_fields, schema)
        record.values = SchemaNegotiator.apply(mappings, record.values)
        record.schema_id = schema.schema_id
        record.metadata["units"] = {f.name: f.unit for f in schema.fields
                                    if f.name in record.values}
        return self.ingest(record)

    def __len__(self) -> int:
        return len(self._records)

    def has(self, record_id: str) -> bool:
        return record_id in self._records

    def local(self, record_id: str) -> DataRecord:
        return self._records[record_id]

    def local_records(self) -> list[DataRecord]:
        return [self._records[k] for k in sorted(self._records)]

    # -- serving -------------------------------------------------------------------

    def _authorize(self, record: DataRecord, requester_token: Any,
                   requester_site: str) -> None:
        if self.gateway is None:
            return
        from repro.security.zerotrust import SecurityError
        msg = Message(Performative.REQUEST, sender=requester_site,
                      recipient=self.site)
        env = Envelope(message=msg, src_site=requester_site,
                       dst_site=self.site, token=requester_token,
                       enqueued_at=self.sim.now)
        # data:export is the governed action for data leaving the node;
        # the owning institution's policy decides (e.g. a record tagged
        # ``restricted`` never leaves).
        try:
            self.gateway.verify_resource(
                env, "data:export",
                {"sensitivity": record.sensitivity,
                 "record_id": record.record_id,
                 "institution": record.institution})
        except SecurityError as exc:
            raise AccessDenied(str(exc)) from exc

    def fetch(self, record_id: str, requester_site: str,
              requester_token: Any = None):
        """Generator: serve a record to a (possibly remote) requester.

        Index metadata is global, but the *data* transfer happens here —
        and only if policy allows it to leave.
        """
        record = self._records.get(record_id)
        if record is None:
            raise KeyError(f"{record_id} is not held at {self.site}")
        try:
            self._authorize(record, requester_token, requester_site)
        except AccessDenied:
            self.stats["denied"] += 1
            raise
        yield self.network.send(self.site, requester_site,
                                record.size_bytes())
        self.stats["served"] += 1
        return record

    # -- FAIR accounting -----------------------------------------------------------------

    def mean_fair_score(self) -> float:
        if not self._records:
            return 0.0
        scores = [fair_score(r, indexed=r.record_id in self.index,
                             schemas=self.schemas,
                             provenance=self.provenance).overall
                  for r in self._records.values()]
        return float(sum(scores) / len(scores))


class FederatedDataMesh:
    """Facade over all nodes: discovery + transparent cross-site fetch.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    index:
        Shared discovery index — a flat :class:`DiscoveryIndex` (default)
        or a :class:`~repro.data.shard.ShardedDiscoveryIndex` for
        facility-sharded federations.
    index_site:
        Where the discovery index is hosted (queries pay a WAN hop to
        it).  Defaults to the first *registered* node's site — recorded
        explicitly at :meth:`add_node` time so placement never depends
        on live dict iteration order.
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 index: Any = None,
                 index_site: Optional[str] = None) -> None:
        self.sim = sim
        self.network = network
        self.index = index if index is not None else DiscoveryIndex()
        self.index_site = index_site
        self.nodes: dict[str, DataMeshNode] = {}

    def add_node(self, node: DataMeshNode) -> DataMeshNode:
        if node.site in self.nodes:
            raise ValueError(f"duplicate mesh node for site {node.site!r}")
        if node.index is not self.index:
            raise ValueError("node must share the mesh's discovery index")
        self.nodes[node.site] = node
        if self.index_site is None:
            self.index_site = node.site
        return node

    def make_node(self, site: str, institution: str, **kw: Any) -> DataMeshNode:
        node = DataMeshNode(self.sim, self.network, site, institution,
                            self.index, **kw)
        return self.add_node(node)

    def discover(self, from_site: str, **filters: Any):
        """Generator: query the index (pays one WAN hop to it)."""
        index_site = self.index_site if self.index_site is not None \
            else from_site
        yield self.network.send(from_site, index_site, 256.0)
        entries = self.index.query(**filters)
        yield self.network.send(index_site, from_site,
                                256.0 + 256.0 * len(entries))
        return entries

    def fetch(self, record_id: str, to_site: str, token: Any = None):
        """Generator: locate a record via the index and pull it."""
        entry = self.index.get(record_id)
        if entry is None:
            # Fall back to a scan of nodes (e.g. before index replication).
            for site in sorted(self.nodes):
                if self.nodes[site].has(record_id):
                    entry = {"site": site}
                    break
        if entry is None:
            raise KeyError(f"{record_id} not known to the federation")
        home = self.nodes[entry["site"]]
        record = yield from home.fetch(record_id, requester_site=to_site,
                                       requester_token=token)
        return record

    def merged_provenance(self, *, namespaced: bool = False
                          ) -> ProvenanceGraph:
        """Federation-wide provenance: every node's shard, merged.

        With ``namespaced=True`` each node's local ids are prefixed
        ``<site>::`` (the qualified form cross-shard
        ``wasDerivedFrom`` references use); without it, ids must already
        be globally unique (true for records minted by the per-world
        :class:`~repro.sim.ids.IdSequencer`).
        """
        return ProvenanceGraph.merge_shards(
            {site: self.nodes[site].provenance for site in sorted(self.nodes)},
            namespaced=namespaced)
