"""Federated data mesh with cross-institutional discovery (milestone M6).

"Priority should be given to implementing data mesh architectures in which
each laboratory maintains a federated node with standardized interfaces,
complemented by global discovery indices" (§3.2).

Records live at their producing site's :class:`DataMeshNode` (data
sovereignty); only metadata-only *index entries* replicate to the shared
:class:`DiscoveryIndex`.  Cross-site fetches go over the simulated WAN and
through the zero-trust gateway, with ABAC deciding whether e.g. a
``restricted`` record may leave its institution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.comm.message import Envelope, Message, Performative
from repro.data.fair import FairGovernor, fair_score
from repro.data.provenance import ProvenanceGraph
from repro.data.record import DataRecord
from repro.data.schema import SchemaRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class AccessDenied(Exception):
    """ABAC refused a cross-institutional data access."""


class DiscoveryIndex:
    """The global, metadata-only index all mesh nodes share."""

    def __init__(self) -> None:
        self._entries: dict[str, dict[str, Any]] = {}
        self.stats = {"publishes": 0, "queries": 0}

    def publish(self, entry: dict[str, Any]) -> None:
        self._entries[entry["record_id"]] = entry
        self.stats["publishes"] += 1

    def remove(self, record_id: str) -> None:
        self._entries.pop(record_id, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._entries

    def query(self, predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
              **equals: Any) -> list[dict[str, Any]]:
        """Find index entries by equality filters and/or a predicate.

        Dotted keys reach into ``metadata`` (e.g.
        ``query(**{"metadata.technique": "powder-xrd"})``).
        """
        self.stats["queries"] += 1
        out = []
        for entry in self._entries.values():
            ok = True
            for key, want in equals.items():
                value: Any = entry
                for part in key.split("."):
                    value = value.get(part) if isinstance(value, dict) else None
                    if value is None:
                        break
                if value != want:
                    ok = False
                    break
            if ok and (predicate is None or predicate(entry)):
                out.append(entry)
        return sorted(out, key=lambda e: e["record_id"])


class DataMeshNode:
    """One laboratory's federated data node.

    Parameters
    ----------
    sim, network:
        Kernel and transport.
    site / institution:
        Identity of the hosting lab.
    index:
        The shared :class:`DiscoveryIndex`.
    schemas:
        Local schema registry (a copy of community schemas, typically).
    governor:
        Optional FAIR governor auditing records on ingest.
    gateway:
        Optional zero-trust gateway; cross-site fetches are verified.
    index_latency_s:
        Asynchronous delay before a published record is discoverable
        (index replication lag).
    """

    def __init__(self, sim: "Simulator", network: "Network", site: str,
                 institution: str, index: DiscoveryIndex,
                 schemas: Optional[SchemaRegistry] = None,
                 governor: Optional[FairGovernor] = None,
                 gateway: Any = None,
                 index_latency_s: float = 0.5) -> None:
        self.sim = sim
        self.network = network
        self.site = site
        self.institution = institution
        self.index = index
        self.schemas = schemas or SchemaRegistry()
        self.governor = governor
        self.gateway = gateway
        self.provenance = ProvenanceGraph()
        self.index_latency_s = index_latency_s
        self._records: dict[str, DataRecord] = {}
        self.stats = {"ingested": 0, "served": 0, "denied": 0}

    # -- ingest -----------------------------------------------------------------

    def ingest(self, record: DataRecord) -> DataRecord:
        """Store a locally-produced record and schedule index publication."""
        record.site = record.site or self.site
        record.institution = record.institution or self.institution
        if self.governor is not None:
            self.governor.audit(record, time=self.sim.now,
                                indexed=False, schemas=self.schemas,
                                provenance=self.provenance)
        self._records[record.record_id] = record
        self.stats["ingested"] += 1
        entry = record.index_entry()
        # Index replication is asynchronous: discoverable after a lag.
        self.sim.schedule_callback(self.index_latency_s,
                                   lambda: self.index.publish(entry))
        return record

    def normalize_and_ingest(self, record: DataRecord, schema_name: str,
                             producer_units: Optional[dict[str, str]] = None
                             ) -> DataRecord:
        """Ingest a foreign-dialect record by negotiating onto a schema.

        The §3.2 "implicit schema" path: the producer's field names/units
        need not match ours — the negotiator maps via aliases and unit
        suffixes (``temperature_K`` satisfies ``temperature``) and the
        values are rewritten in canonical form before ingest.  Raises
        :class:`~repro.data.schema.SchemaError` when required fields
        cannot be satisfied.
        """
        from repro.data.schema import SchemaNegotiator
        schema = self.schemas.latest(schema_name)
        if schema is None:
            from repro.data.schema import SchemaError
            raise SchemaError(f"no schema named {schema_name!r} registered")
        units = producer_units or record.metadata.get("units") or {}
        producer_fields = {k: units.get(k, "") for k in record.values}
        negotiator = SchemaNegotiator(self.schemas)
        mappings = negotiator.negotiate(producer_fields, schema)
        record.values = SchemaNegotiator.apply(mappings, record.values)
        record.schema_id = schema.schema_id
        record.metadata["units"] = {f.name: f.unit for f in schema.fields
                                    if f.name in record.values}
        return self.ingest(record)

    def __len__(self) -> int:
        return len(self._records)

    def has(self, record_id: str) -> bool:
        return record_id in self._records

    def local(self, record_id: str) -> DataRecord:
        return self._records[record_id]

    def local_records(self) -> list[DataRecord]:
        return [self._records[k] for k in sorted(self._records)]

    # -- serving -------------------------------------------------------------------

    def _authorize(self, record: DataRecord, requester_token: Any,
                   requester_site: str) -> None:
        if self.gateway is None:
            return
        from repro.security.zerotrust import SecurityError
        msg = Message(Performative.REQUEST, sender=requester_site,
                      recipient=self.site)
        env = Envelope(message=msg, src_site=requester_site,
                       dst_site=self.site, token=requester_token,
                       enqueued_at=self.sim.now)
        # data:export is the governed action for data leaving the node;
        # the owning institution's policy decides (e.g. a record tagged
        # ``restricted`` never leaves).
        try:
            self.gateway.verify_resource(
                env, "data:export",
                {"sensitivity": record.sensitivity,
                 "record_id": record.record_id,
                 "institution": record.institution})
        except SecurityError as exc:
            raise AccessDenied(str(exc)) from exc

    def fetch(self, record_id: str, requester_site: str,
              requester_token: Any = None):
        """Generator: serve a record to a (possibly remote) requester.

        Index metadata is global, but the *data* transfer happens here —
        and only if policy allows it to leave.
        """
        record = self._records.get(record_id)
        if record is None:
            raise KeyError(f"{record_id} is not held at {self.site}")
        try:
            self._authorize(record, requester_token, requester_site)
        except AccessDenied:
            self.stats["denied"] += 1
            raise
        yield self.network.send(self.site, requester_site,
                                record.size_bytes())
        self.stats["served"] += 1
        return record

    # -- FAIR accounting -----------------------------------------------------------------

    def mean_fair_score(self) -> float:
        if not self._records:
            return 0.0
        scores = [fair_score(r, indexed=r.record_id in self.index,
                             schemas=self.schemas,
                             provenance=self.provenance).overall
                  for r in self._records.values()]
        return float(sum(scores) / len(scores))


class FederatedDataMesh:
    """Facade over all nodes: discovery + transparent cross-site fetch."""

    def __init__(self, sim: "Simulator", network: "Network",
                 index: Optional[DiscoveryIndex] = None) -> None:
        self.sim = sim
        self.network = network
        self.index = index or DiscoveryIndex()
        self.nodes: dict[str, DataMeshNode] = {}

    def add_node(self, node: DataMeshNode) -> DataMeshNode:
        if node.site in self.nodes:
            raise ValueError(f"duplicate mesh node for site {node.site!r}")
        if node.index is not self.index:
            raise ValueError("node must share the mesh's discovery index")
        self.nodes[node.site] = node
        return node

    def make_node(self, site: str, institution: str, **kw: Any) -> DataMeshNode:
        node = DataMeshNode(self.sim, self.network, site, institution,
                            self.index, **kw)
        return self.add_node(node)

    def discover(self, from_site: str, **filters: Any):
        """Generator: query the index (pays one WAN hop to it).

        The index is modelled as co-hosted with the first registered node.
        """
        index_site = next(iter(self.nodes)) if self.nodes else from_site
        yield self.network.send(from_site, index_site, 256.0)
        entries = self.index.query(**filters)
        yield self.network.send(index_site, from_site,
                                256.0 + 256.0 * len(entries))
        return entries

    def fetch(self, record_id: str, to_site: str, token: Any = None):
        """Generator: locate a record via the index and pull it."""
        entry = None
        if record_id in self.index:
            entries = self.index.query(record_id=record_id)
            entry = entries[0] if entries else None
        if entry is None:
            # Fall back to a scan of nodes (e.g. before index replication).
            for node in self.nodes.values():
                if node.has(record_id):
                    entry = {"site": node.site}
                    break
        if entry is None:
            raise KeyError(f"{record_id} not known to the federation")
        home = self.nodes[entry["site"]]
        record = yield from home.fetch(record_id, requester_site=to_site,
                                       requester_token=token)
        return record
