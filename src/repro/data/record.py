"""The unit of scientific data: a typed, annotated record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.comm.serialization import estimate_size
from repro.sim.ids import next_label


@dataclass
class DataRecord:
    """One scientific observation (or derived product) in the data fabric.

    Attributes
    ----------
    record_id:
        Globally unique identifier ("F" in FAIR needs one).
    schema_id:
        ``name@version`` of the schema the values claim to follow
        (empty until annotation assigns one).
    source:
        Producing instrument or agent.
    site / institution:
        Where the record was produced (data sovereignty follows this).
    values:
        Scalar, schema-validated observations.
    raw:
        Vendor-format payload (arrays, nested dicts); may be a
        :class:`~repro.data.proxystore.Proxy` when passed by reference.
    metadata:
        Free-form annotations (technique, operator, environment...).
    license / sensitivity:
        Reuse terms ("R" in FAIR) and access class.
    provenance_id:
        Entity id inside the provenance graph.
    quality:
        Filled by the quality layer: score in [0, 1] plus flags.
    """

    source: str
    values: dict[str, float] = field(default_factory=dict)
    raw: Any = None
    site: str = ""
    institution: str = ""
    schema_id: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)
    license: str = ""
    sensitivity: str = "open"
    provenance_id: str = ""
    time: float = 0.0
    record_id: str = ""
    quality: Optional[dict[str, Any]] = None

    def __post_init__(self) -> None:
        if not self.record_id:
            # Ambient world allocation (repro.sim.ids): records minted on
            # a simulation path draw from that world's "record" stream.
            self.record_id = next_label("record", "rec")

    def size_bytes(self) -> float:
        return 256.0 + estimate_size(self.values) + estimate_size(self.raw) \
            + estimate_size(self.metadata)

    def index_entry(self) -> dict[str, Any]:
        """The metadata-only view shared with the global discovery index.

        Raw payloads never leave the owning site through the index —
        that is the data-sovereignty property of the mesh (§3.2).
        """
        return {
            "record_id": self.record_id,
            "schema_id": self.schema_id,
            "source": self.source,
            "site": self.site,
            "institution": self.institution,
            "time": self.time,
            "keys": sorted(self.values),
            "metadata": dict(self.metadata),
            "sensitivity": self.sensitivity,
            "quality_score": (self.quality or {}).get("score"),
        }

    @classmethod
    def from_measurement(cls, measurement, institution: str = "",
                         sensitivity: str = "open") -> "DataRecord":
        """Lift an instrument :class:`Measurement` into the data fabric."""
        return cls(
            source=measurement.instrument,
            values=dict(measurement.values),
            raw=measurement.raw,
            site=measurement.site,
            institution=institution or measurement.site,
            metadata={"kind": measurement.kind,
                      "sample_id": measurement.sample_id,
                      "units": dict(measurement.units),
                      **dict(measurement.metadata)},
            time=measurement.time,
            sensitivity=sensitivity,
        )
