"""PROV-O-style provenance graphs (§3.2, ref [13]).

"Integration of data provenance frameworks (e.g., PROV-O) into instrument
middleware will ensure comprehensive traceability of autonomous decisions
across distributed facilities."

The model follows PROV's core trio — entities (data, samples), activities
(syntheses, measurements, analyses, decisions), agents (AI planners,
instruments, humans) — with the standard relations as typed edges on a
``networkx`` DiGraph.
"""

from __future__ import annotations

from typing import Any, Optional

import networkx as nx

#: PROV relation names used as edge ``kind``.
USED = "used"
GENERATED_BY = "wasGeneratedBy"
ASSOCIATED_WITH = "wasAssociatedWith"
DERIVED_FROM = "wasDerivedFrom"
INFORMED_BY = "wasInformedBy"
ATTRIBUTED_TO = "wasAttributedTo"


#: Separator between a shard namespace and a local node id in qualified
#: (cross-shard) node names: ``site-3::rec-0042``.
NAMESPACE_SEP = "::"


def qualified(namespace: str, node_id: str) -> str:
    """Fully-qualified cross-shard name for a node held by ``namespace``."""
    return f"{namespace}{NAMESPACE_SEP}{node_id}" if namespace else node_id


class ProvenanceGraph:
    """A typed provenance DAG with PROV-O relation vocabulary.

    Graphs are *mergeable*: each facility keeps its own shard, and
    :meth:`merge_from` / :meth:`merge_shards` assemble federation-wide
    views, optionally namespacing node ids by shard.  Cross-shard
    derivations recorded with ``was_derived_from(..., cross_shard=True)``
    stay *pending* until a merge brings the referenced foreign node in,
    at which point they are stitched into real edges.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        # Deferred cross-shard relations: (src, fully-qualified dst, kind).
        self._pending: list[tuple[str, str, str]] = []

    # -- node creation ---------------------------------------------------------

    def _add_node(self, node_id: str, prov_type: str, **attrs: Any) -> str:
        if node_id in self._g:
            existing = self._g.nodes[node_id].get("prov_type")
            if existing != prov_type:
                raise ValueError(
                    f"{node_id!r} already recorded as {existing}")
            self._g.nodes[node_id].update(attrs)
            return node_id
        self._g.add_node(node_id, prov_type=prov_type, **attrs)
        return node_id

    def entity(self, entity_id: str, **attrs: Any) -> str:
        """Record a data/sample entity."""
        return self._add_node(entity_id, "entity", **attrs)

    def activity(self, activity_id: str, *, started: float = 0.0,
                 ended: float = 0.0, **attrs: Any) -> str:
        """Record an activity (synthesis, measurement, agent decision...)."""
        return self._add_node(activity_id, "activity", started=started,
                              ended=ended, **attrs)

    def agent(self, agent_id: str, **attrs: Any) -> str:
        """Record an agent (AI planner, instrument, human operator)."""
        return self._add_node(agent_id, "agent", **attrs)

    # -- relations ----------------------------------------------------------------

    def _relate(self, src: str, dst: str, kind: str) -> None:
        for node in (src, dst):
            if node not in self._g:
                raise KeyError(f"unknown provenance node {node!r}")
        self._g.add_edge(src, dst, kind=kind)

    def used(self, activity: str, entity: str) -> None:
        self._relate(activity, entity, USED)

    def was_generated_by(self, entity: str, activity: str) -> None:
        self._relate(entity, activity, GENERATED_BY)

    def was_associated_with(self, activity: str, agent: str) -> None:
        self._relate(activity, agent, ASSOCIATED_WITH)

    def was_derived_from(self, entity: str, source_entity: str, *,
                         cross_shard: bool = False) -> None:
        """Entity derivation; ``cross_shard=True`` defers the edge.

        A cross-shard derivation names a *foreign* source by its
        fully-qualified id (see :func:`qualified`); the edge is recorded
        as pending and stitched when a merge brings that node in.
        """
        if cross_shard:
            if entity not in self._g:
                raise KeyError(f"unknown provenance node {entity!r}")
            self._pending.append((entity, source_entity, DERIVED_FROM))
            return
        self._relate(entity, source_entity, DERIVED_FROM)

    def was_informed_by(self, activity: str, earlier_activity: str) -> None:
        self._relate(activity, earlier_activity, INFORMED_BY)

    def was_attributed_to(self, entity: str, agent: str) -> None:
        self._relate(entity, agent, ATTRIBUTED_TO)

    # -- shard merging -----------------------------------------------------------------

    @property
    def pending_stitches(self) -> list[tuple[str, str, str]]:
        """Unresolved cross-shard relations, ``(src, dst, kind)``."""
        return sorted(self._pending)

    def _stitch(self) -> int:
        """Turn every resolvable pending relation into a real edge."""
        stitched, still_pending = 0, []
        for src, dst, kind in self._pending:
            if src in self._g and dst in self._g:
                self._g.add_edge(src, dst, kind=kind)
                stitched += 1
            else:
                still_pending.append((src, dst, kind))
        self._pending = still_pending
        return stitched

    def merge_from(self, other: "ProvenanceGraph", *,
                   namespace: Optional[str] = None) -> int:
        """Copy ``other``'s shard into this graph; returns edges stitched.

        With ``namespace`` every one of ``other``'s node ids is prefixed
        ``<namespace>::`` — its *local* naming scope.  Pending cross-shard
        references are **not** prefixed: they already name foreign nodes
        by fully-qualified id, which is exactly what lets them resolve
        once the owning shard merges in under that namespace.  Node-id
        collisions with a different ``prov_type`` raise ``ValueError``
        (same contract as local node creation).
        """
        prefix = f"{namespace}{NAMESPACE_SEP}" if namespace else ""
        for node_id in sorted(other._g.nodes):
            attrs = dict(other._g.nodes[node_id])
            prov_type = attrs.pop("prov_type")
            self._add_node(prefix + node_id, prov_type, **attrs)
        for src, dst, data in sorted(other._g.edges(data=True),
                                     key=lambda e: (e[0], e[1])):
            self._g.add_edge(prefix + src, prefix + dst, kind=data["kind"])
        for src, dst, kind in other._pending:
            self._pending.append((prefix + src, dst, kind))
        return self._stitch()

    @classmethod
    def merge_shards(cls, shards: "dict[str, ProvenanceGraph]", *,
                     namespaced: bool = True) -> "ProvenanceGraph":
        """One federation-wide graph from per-facility shards.

        Shards merge in sorted-key order (determinism); with
        ``namespaced=True`` each shard's ids live under its key.
        """
        merged = cls()
        for name in sorted(shards):
            merged.merge_from(shards[name],
                              namespace=name if namespaced else None)
        return merged

    # -- queries -----------------------------------------------------------------------

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._g

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of recorded relations (pending stitches excluded)."""
        return self._g.number_of_edges()

    def node_type(self, node_id: str) -> str:
        return self._g.nodes[node_id]["prov_type"]

    def attrs(self, node_id: str) -> dict[str, Any]:
        return dict(self._g.nodes[node_id])

    def lineage(self, entity_id: str) -> list[str]:
        """Every node reachable from ``entity_id`` along provenance edges.

        This answers "how was this number produced?" — the full upstream
        closure of samples, activities, and agents.
        """
        if entity_id not in self._g:
            raise KeyError(entity_id)
        return sorted(nx.descendants(self._g, entity_id))

    def derived_products(self, entity_id: str) -> list[str]:
        """Downstream entities that (transitively) derive from this one."""
        if entity_id not in self._g:
            raise KeyError(entity_id)
        upstream_of = nx.ancestors(self._g, entity_id)
        return sorted(n for n in upstream_of
                      if self._g.nodes[n]["prov_type"] == "entity")

    def responsible_agents(self, entity_id: str) -> list[str]:
        """All agents in the entity's lineage — who to ask about it."""
        return [n for n in self.lineage(entity_id)
                if self._g.nodes[n]["prov_type"] == "agent"]

    def generating_activity(self, entity_id: str) -> Optional[str]:
        for _, dst, data in self._g.out_edges(entity_id, data=True):
            if data["kind"] == GENERATED_BY:
                return dst
        return None

    # -- completeness metric (E9) ---------------------------------------------------------

    def completeness(self, entity_id: str) -> float:
        """Fraction of provenance questions answerable for an entity.

        Checks: (1) a generating activity exists, (2) that activity has an
        associated agent, (3) the activity's inputs are recorded (``used``
        edge or a ``wasDerivedFrom``), (4) timestamps present.
        """
        if entity_id not in self._g:
            return 0.0
        score = 0.0
        activity = self.generating_activity(entity_id)
        if activity is not None:
            score += 0.25
            edges = self._g.out_edges(activity, data=True)
            if any(d["kind"] == ASSOCIATED_WITH for _, _, d in edges):
                score += 0.25
            has_inputs = (any(d["kind"] == USED for _, _, d in edges)
                          or any(d["kind"] == DERIVED_FROM for _, _, d in
                                 self._g.out_edges(entity_id, data=True)))
            if has_inputs:
                score += 0.25
            if self._g.nodes[activity].get("ended", 0.0) > 0.0:
                score += 0.25
        return score

    # -- export ------------------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped export (PROV-JSON-like)."""
        out: dict[str, Any] = {
            "nodes": [{"id": n, **self._g.nodes[n]} for n in
                      sorted(self._g.nodes)],
            "edges": [{"src": u, "dst": v, "kind": d["kind"]}
                      for u, v, d in sorted(self._g.edges(data=True),
                                            key=lambda e: (e[0], e[1]))],
        }
        if self._pending:
            out["pending"] = [{"src": s, "dst": d, "kind": k}
                              for s, d, k in self.pending_stitches]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProvenanceGraph":
        """Rebuild a graph from :meth:`to_dict` output (replay path)."""
        graph = cls()
        for node in data.get("nodes", ()):
            attrs = dict(node)
            node_id = attrs.pop("id")
            prov_type = attrs.pop("prov_type")
            graph._add_node(node_id, prov_type, **attrs)
        for edge in data.get("edges", ()):
            graph._g.add_edge(edge["src"], edge["dst"], kind=edge["kind"])
        for edge in data.get("pending", ()):
            graph._pending.append((edge["src"], edge["dst"], edge["kind"]))
        return graph
