"""Near-real-time stream processing (milestone M7).

"Near real-time data streams from modern instruments generate volumes that
exceed human processing capabilities, requiring intelligent filtering and
prioritization mechanisms that can distinguish between routine
measurements and anomalous conditions requiring immediate attention."

The :class:`StreamProcessor` is a simulation process draining a record
queue: every record is quality-assessed; anomalies trigger alert
callbacks immediately; routine records are *reduced* (only one in
``keep_every`` is retained) while anomalous or low-quality records are
always kept.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.data.quality import QualityAssessor
from repro.data.record import DataRecord
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.mesh import DataMeshNode
    from repro.sim.kernel import Simulator


class StreamProcessor:
    """High-velocity record pipeline with intelligent reduction.

    Parameters
    ----------
    sim:
        Kernel.
    assessor:
        Quality layer applied to every record.
    sink:
        Optional mesh node that retained records are ingested into.
    keep_every:
        Retention stride for routine records (1 = keep everything).
    per_record_s:
        Processing cost per record — the capacity bound that makes
        backlog measurable.
    alert_threshold:
        Quality score below which the alert callback fires.
    """

    def __init__(self, sim: "Simulator", assessor: QualityAssessor,
                 sink: Optional["DataMeshNode"] = None, *,
                 keep_every: int = 10, per_record_s: float = 0.002,
                 alert_threshold: float = 0.5,
                 on_alert: Optional[Callable[[DataRecord, Any], None]] = None
                 ) -> None:
        if keep_every < 1:
            raise ValueError("keep_every must be >= 1")
        self.sim = sim
        self.assessor = assessor
        self.sink = sink
        self.keep_every = keep_every
        self.per_record_s = per_record_s
        self.alert_threshold = alert_threshold
        self.on_alert = on_alert
        self.queue: Store = Store(sim)
        self.retained: list[DataRecord] = []
        self.stats = {"processed": 0, "retained": 0, "reduced": 0,
                      "alerts": 0, "max_backlog": 0,
                      "busy_time": 0.0}
        self._routine_counter = 0
        self._running = False

    # -- producer side ------------------------------------------------------------

    def submit(self, record: DataRecord) -> None:
        """Enqueue a record (instruments call this as data is born)."""
        self.queue.put(record)
        backlog = len(self.queue)
        if backlog > self.stats["max_backlog"]:
            self.stats["max_backlog"] = backlog

    # -- the pipeline process ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the draining process."""
        if self._running:
            raise RuntimeError("stream processor already running")
        self._running = True
        self.sim.process(self._run())

    def _run(self):
        while True:
            record: DataRecord = yield self.queue.get()
            t0 = self.sim.now
            yield self.sim.timeout(self.per_record_s)
            self._process(record)
            self.stats["busy_time"] += self.sim.now - t0

    def _process(self, record: DataRecord) -> None:
        self.stats["processed"] += 1
        report = self.assessor.assess(record)
        critical = report.anomalous or report.score < self.alert_threshold
        if critical:
            self.stats["alerts"] += 1
            if self.on_alert is not None:
                self.on_alert(record, report)
        # Intelligent reduction: anomalies always retained; routine
        # records are decimated.
        if critical:
            self._retain(record)
            return
        self._routine_counter += 1
        if self._routine_counter % self.keep_every == 0:
            self._retain(record)
        else:
            self.stats["reduced"] += 1

    def _retain(self, record: DataRecord) -> None:
        self.stats["retained"] += 1
        self.retained.append(record)
        if self.sink is not None:
            self.sink.ingest(record)

    # -- metrics ----------------------------------------------------------------------------

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def reduction_ratio(self) -> float:
        """Fraction of routine traffic dropped by intelligent reduction."""
        if not self.stats["processed"]:
            return 0.0
        return self.stats["reduced"] / self.stats["processed"]

    def throughput(self) -> float:
        """Records per second of busy time."""
        busy = self.stats["busy_time"]
        return self.stats["processed"] / busy if busy > 0 else 0.0
