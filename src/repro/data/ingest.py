"""Telemetry ingest: instruments -> message bus -> data mesh.

Connects dimension 4's middleware to dimension 2's fabric, as Fig. 1
draws it: instruments publish measurements to AMQP-style topics
(``telemetry.<site>.<instrument-kind>``); a :class:`MeshIngestor` at the
data node consumes its queue, lifts envelopes into
:class:`~repro.data.record.DataRecord` objects, and hands them to the
stream-processing layer (quality assessment + intelligent reduction)
before they land in the mesh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.comm.bus import BrokerDown, MessageBus
from repro.comm.message import Message, Performative
from repro.data.record import DataRecord
from repro.data.streams import StreamProcessor
from repro.instruments.base import Measurement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.kernel import Simulator


class TelemetryPublisher:
    """Instrument-side: publish measurements onto the bus.

    With a ``metrics`` registry the ``stats`` mapping is backed by
    shared ``ingest.publisher.*`` counters (per-site labels), so every
    publisher in a federation reports through the same mergeable path;
    without one it stays a private plain dict.
    """

    def __init__(self, sim: "Simulator", bus: MessageBus, broker: str,
                 site: str, token=None,
                 metrics: "Optional[MetricsRegistry]" = None) -> None:
        self.sim = sim
        self.bus = bus
        self.broker = broker
        self.site = site
        self.token = token
        initial = {"published": 0, "failed": 0}
        self.stats = (metrics.stats("ingest.publisher", initial, site=site)
                      if metrics is not None else initial)

    @staticmethod
    def topic_for(measurement: Measurement) -> str:
        return f"telemetry.{measurement.site}.{measurement.kind}"

    def publish(self, measurement: Measurement):
        """Generator: ship one measurement to the broker."""
        msg = Message(performative=Performative.INFORM,
                      sender=measurement.instrument,
                      recipient=self.topic_for(measurement),
                      payload=measurement)
        try:
            routed = yield from self.bus.publish(
                self.broker, self.site, self.topic_for(measurement), msg,
                token=self.token)
        except BrokerDown:
            self.stats["failed"] += 1
            return 0
        self.stats["published"] += 1
        return routed


class MeshIngestor:
    """Data-node side: drain a telemetry queue into the stream processor.

    Parameters
    ----------
    sim, bus, broker, queue:
        Where to consume from.
    site / institution:
        Identity stamped onto ingested records.
    stream:
        The quality/reduction pipeline records flow through (its sink is
        typically the site's mesh node).
    """

    def __init__(self, sim: "Simulator", bus: MessageBus, broker: str,
                 queue: str, site: str, institution: str,
                 stream: StreamProcessor, token=None,
                 metrics: "Optional[MetricsRegistry]" = None) -> None:
        self.sim = sim
        self.bus = bus
        self.broker = broker
        self.queue_name = queue
        self.site = site
        self.institution = institution
        self.stream = stream
        self.token = token
        initial = {"consumed": 0, "malformed": 0}
        self.stats = (metrics.stats("ingest.mesh", initial, site=site)
                      if metrics is not None else initial)
        self._proc = None

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("ingestor already running")
        self._proc = self.sim.process(self._run())

    def _run(self):
        queue = self.bus.brokers[self.broker].queues[self.queue_name]
        # detlint: ignore[C003] consumer drain loop, not a retry: each pass takes a fresh envelope; BrokerDown parks until revival
        while True:
            try:
                envelope = yield from self.bus.consume(
                    self.broker, self.queue_name, consumer_site=self.site,
                    token=self.token)
            except BrokerDown:
                # Broker outage: back off and retry (at-least-once overall).
                yield self.sim.timeout(5.0)
                continue
            payload = envelope.message.payload
            if isinstance(payload, Measurement):
                record = DataRecord.from_measurement(
                    payload, institution=self.institution)
                self.stream.submit(record)
                self.stats["consumed"] += 1
                queue.ack(envelope)
            else:
                self.stats["malformed"] += 1
                # Malformed telemetry is not requeued; it dead-letters.
                queue.nack(envelope, requeue=False)


def wire_site_telemetry(sim: "Simulator", bus: MessageBus, broker_name: str,
                        site: str, institution: str,
                        stream: StreamProcessor, token=None,
                        metrics: "Optional[MetricsRegistry]" = None,
                        ) -> tuple[TelemetryPublisher, MeshIngestor]:
    """Declare the queue/binding and return a (publisher, ingestor) pair."""
    broker = bus.brokers[broker_name]
    queue = f"telemetry.{site}"
    broker.declare_queue(queue)
    broker.bind(queue, f"telemetry.{site}.#")
    publisher = TelemetryPublisher(sim, bus, broker_name, site, token=token,
                                   metrics=metrics)
    ingestor = MeshIngestor(sim, bus, broker_name, queue, site, institution,
                            stream, token=token, metrics=metrics)
    return publisher, ingestor
