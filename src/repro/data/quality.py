"""Streaming data-quality assessment (milestone M7).

Autonomous systems "require qualification mechanisms that can
automatically assess data reliability based on experimental conditions,
instrument status, and historical patterns" (§3.2).  The
:class:`QualityAssessor` combines three such signals per record:

1. **Schema/range checks** — are the values physical?
2. **Historical pattern** — a rolling robust z-score per quantity
   (:class:`AnomalyDetector`).
3. **Instrument status** — records produced by drifted/faulted
   instruments are discounted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.data.record import DataRecord
from repro.data.schema import Schema


@dataclass
class QualityReport:
    """Outcome of one assessment."""

    score: float
    flags: list[str] = field(default_factory=list)
    anomalous: bool = False
    z_scores: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"score": round(self.score, 4), "flags": list(self.flags),
                "anomalous": self.anomalous}


class AnomalyDetector:
    """Rolling robust z-score detector per quantity.

    Uses median/MAD over a bounded window, so single outliers do not
    poison the baseline (the "bad data propagating through AI-driven
    decision chains" failure mode the paper warns about).
    """

    def __init__(self, window: int = 64, z_threshold: float = 4.0,
                 min_history: int = 8) -> None:
        self.window = window
        self.z_threshold = z_threshold
        self.min_history = min_history
        self._history: dict[str, deque] = {}

    def z_score(self, key: str, value: float) -> Optional[float]:
        """Robust z of ``value`` against history (None if too little)."""
        hist = self._history.get(key)
        if hist is None or len(hist) < self.min_history:
            return None
        arr = np.asarray(hist)
        med = float(np.median(arr))
        mad = float(np.median(np.abs(arr - med)))
        scale = 1.4826 * mad if mad > 0 else (float(np.std(arr)) or 1e-12)
        return (value - med) / scale

    def observe(self, key: str, value: float) -> Optional[float]:
        """Score then absorb the observation; returns the z-score."""
        z = self.z_score(key, value)
        hist = self._history.setdefault(key, deque(maxlen=self.window))
        # Extreme outliers are scored but NOT absorbed into the baseline.
        if z is None or abs(z) <= self.z_threshold:
            hist.append(float(value))
        return z

    def is_anomalous(self, z: Optional[float]) -> bool:
        return z is not None and abs(z) > self.z_threshold


class QualityAssessor:
    """Per-record quality scoring, stamped into ``record.quality``."""

    def __init__(self, schema: Optional[Schema] = None,
                 detector: Optional[AnomalyDetector] = None,
                 drift_tolerance: float = 0.1) -> None:
        self.schema = schema
        self.detector = detector or AnomalyDetector()
        self.drift_tolerance = drift_tolerance
        self.stats = {"assessed": 0, "anomalies": 0, "schema_violations": 0}

    def assess(self, record: DataRecord,
               instrument_state: Optional[Mapping[str, Any]] = None
               ) -> QualityReport:
        """Assess and stamp one record.

        ``instrument_state`` optionally carries ``{"status": str,
        "calibration_bias": float}`` from the producing instrument.
        """
        self.stats["assessed"] += 1
        score = 1.0
        flags: list[str] = []
        z_scores: dict[str, float] = {}

        if self.schema is not None:
            problems = self.schema.validate(record.values)
            if problems:
                self.stats["schema_violations"] += 1
                score -= 0.3
                flags.extend(f"schema:{p}" for p in problems)

        anomalous = False
        for key, value in record.values.items():
            if not isinstance(value, (int, float)):
                continue
            if not np.isfinite(value):
                score -= 0.4
                flags.append(f"non-finite:{key}")
                continue
            z = self.detector.observe(f"{record.source}/{key}", float(value))
            if z is not None:
                z_scores[key] = round(float(z), 3)
                if self.detector.is_anomalous(z):
                    anomalous = True
                    flags.append(f"outlier:{key}(z={z:.1f})")
        if anomalous:
            self.stats["anomalies"] += 1
            score -= 0.3

        if instrument_state:
            status = instrument_state.get("status", "idle")
            if status in ("fault", "offline"):
                score -= 0.5
                flags.append(f"instrument:{status}")
            bias = abs(float(instrument_state.get("calibration_bias", 0.0)))
            if bias > self.drift_tolerance:
                score -= 0.2
                flags.append(f"instrument:drifted({bias:.3f})")

        report = QualityReport(score=max(0.0, score), flags=flags,
                               anomalous=anomalous, z_scores=z_scores)
        record.quality = report.as_dict()
        return report
