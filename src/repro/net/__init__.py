"""Federated multi-institution network substrate.

Models the wide-area connectivity between AISLE sites: per-link latency,
jitter, bandwidth and loss; latency-weighted routing across the topology;
and a fault injector for link failures and network partitions (exercised by
experiments E4 and E11).

Time units are **seconds**, sizes are **bytes**, bandwidth is **bytes/s**.
"""

from repro.net.faults import FaultInjector
from repro.net.topology import Link, Site, Topology
from repro.net.transport import Network, NetworkError, PacketLost, Unreachable

__all__ = [
    "FaultInjector",
    "Link",
    "Network",
    "NetworkError",
    "PacketLost",
    "Site",
    "Topology",
    "Unreachable",
]
