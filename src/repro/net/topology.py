"""Sites, links, and the institutional network topology.

A :class:`Site` is an administrative domain (a laboratory, user facility,
or HPC center).  Sites are vertices of a :class:`Topology`; physical WAN
links carry latency/bandwidth/jitter/loss parameters.  Routing follows the
latency-shortest path, recomputed against the currently-alive subgraph so
fault injection transparently reroutes traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import networkx as nx


@dataclass(frozen=True)
class Site:
    """An administrative/trust domain hosting instruments, agents and data.

    Attributes
    ----------
    name:
        Unique site identifier, e.g. ``"ornl"``.
    institution:
        Human-readable institution name.
    region:
        Coarse geographic tag used by some latency heuristics.
    tags:
        Free-form attributes (e.g. ``{"kind": "user-facility"}``) consulted
        by ABAC policies and scheduling heuristics.
    """

    name: str
    institution: str = ""
    region: str = ""
    tags: tuple[tuple[str, Any], ...] = ()

    def tag(self, key: str, default: Any = None) -> Any:
        """Look up a tag value by key."""
        for k, v in self.tags:
            if k == key:
                return v
        return default

    @staticmethod
    def make(name: str, institution: str = "", region: str = "",
             **tags: Any) -> "Site":
        """Convenience constructor accepting tags as keyword arguments."""
        return Site(name=name, institution=institution or name,
                    region=region, tags=tuple(sorted(tags.items())))


@dataclass
class Link:
    """A bidirectional WAN link between two sites.

    Attributes
    ----------
    latency_s:
        One-way propagation delay in seconds.
    bandwidth_Bps:
        Usable throughput in bytes/second.
    jitter_s:
        Standard deviation of a truncated-Gaussian latency perturbation.
    loss_prob:
        Per-traversal probability that a transfer is lost.
    """

    latency_s: float = 0.010
    bandwidth_Bps: float = 1.25e9  # 10 Gbit/s
    jitter_s: float = 0.0
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.bandwidth_Bps <= 0:
            raise ValueError("bandwidth_Bps must be > 0")
        if self.jitter_s < 0:
            raise ValueError("jitter_s must be >= 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")


#: Link parameters used when two endpoints are co-located at a site
#: (loopback through the site LAN).
LOCAL_LINK = Link(latency_s=0.0002, bandwidth_Bps=1.25e10, jitter_s=0.0,
                  loss_prob=0.0)


class Topology:
    """The graph of sites and WAN links.

    Examples
    --------
    >>> topo = Topology()
    >>> a, b = Site.make("a"), Site.make("b")
    >>> topo.add_site(a); topo.add_site(b)
    >>> topo.connect("a", "b", Link(latency_s=0.02))
    >>> [s.name for s in topo.sites()]
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._sites: dict[str, Site] = {}

    # -- construction -------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise ValueError(f"duplicate site {site.name!r}")
        self._sites[site.name] = site
        self._graph.add_node(site.name)
        return site

    def connect(self, a: str, b: str, link: Optional[Link] = None) -> Link:
        """Add a bidirectional link between sites ``a`` and ``b``."""
        if a not in self._sites or b not in self._sites:
            raise KeyError(f"unknown site in ({a!r}, {b!r})")
        if a == b:
            raise ValueError("cannot connect a site to itself")
        link = link or Link()
        self._graph.add_edge(a, b, link=link, weight=link.latency_s)
        return link

    # -- queries --------------------------------------------------------------

    def site(self, name: str) -> Site:
        return self._sites[name]

    def sites(self) -> list[Site]:
        return [self._sites[n] for n in sorted(self._sites)]

    def has_site(self, name: str) -> bool:
        return name in self._sites

    def link(self, a: str, b: str) -> Link:
        return self._graph.edges[a, b]["link"]

    def links(self) -> list[tuple[str, str, Link]]:
        return [(min(a, b), max(a, b), d["link"])
                for a, b, d in self._graph.edges(data=True)]

    def neighbors(self, name: str) -> list[str]:
        return sorted(self._graph.neighbors(name))

    def path(self, src: str, dst: str,
             blocked: Optional[Iterable[tuple[str, str]]] = None) -> list[str]:
        """Latency-shortest path from ``src`` to ``dst``.

        ``blocked`` is an iterable of edges to exclude (fault injection).
        Raises :class:`networkx.NetworkXNoPath` when disconnected.
        """
        if src == dst:
            return [src]
        graph = self._graph
        if blocked:
            graph = graph.copy()
            for a, b in blocked:
                if graph.has_edge(a, b):
                    graph.remove_edge(a, b)
        return nx.shortest_path(graph, src, dst, weight="weight")

    def path_links(self, path: list[str]) -> list[Link]:
        """The links along a node path."""
        return [self._graph.edges[a, b]["link"] for a, b in zip(path, path[1:])]

    # -- canned topologies ------------------------------------------------------

    @staticmethod
    def national_lab_testbed(n_sites: int = 5, *, latency_s: float = 0.02,
                             bandwidth_Bps: float = 1.25e9,
                             jitter_s: float = 0.002,
                             loss_prob: float = 0.0) -> "Topology":
        """A ring-plus-chords topology approximating ESnet-style connectivity.

        Sites are named ``site-0 .. site-(n-1)``.  Each site connects to its
        ring neighbours, and every third pair gets a chord, giving path
        diversity for failover experiments.
        """
        if n_sites < 2:
            raise ValueError("need at least 2 sites")
        topo = Topology()
        for i in range(n_sites):
            topo.add_site(Site.make(f"site-{i}", institution=f"Lab {i}"))
        link = dict(latency_s=latency_s, bandwidth_Bps=bandwidth_Bps,
                    jitter_s=jitter_s, loss_prob=loss_prob)
        for i in range(n_sites):
            j = (i + 1) % n_sites
            if not topo._graph.has_edge(f"site-{i}", f"site-{j}"):
                topo.connect(f"site-{i}", f"site-{j}", Link(**link))
        for i in range(0, n_sites - 2, 3):
            a, b = f"site-{i}", f"site-{i + 2}"
            if not topo._graph.has_edge(a, b):
                topo.connect(a, b, Link(**link))
        return topo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Topology sites={len(self._sites)} "
                f"links={self._graph.number_of_edges()}>")
