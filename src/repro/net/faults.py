"""Network fault injection: link failures, flaky links, and partitions.

The :class:`FaultInjector` is consulted by the transport on every transfer.
Faults are expressed in simulated time and auto-heal, so experiments can
script failure campaigns declaratively (E4 failover, E11 fault tolerance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


def _edge(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class FaultInjector:
    """Tracks which links/sites are currently failed.

    All ``duration`` parameters are in simulated seconds; ``None`` means
    "until explicitly restored".
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._down_links: dict[tuple[str, str], float] = {}
        self._down_sites: dict[str, float] = {}
        self._partitions: list[tuple[frozenset[str], frozenset[str], float]] = []
        self._degraded: dict[tuple[str, str], tuple[float, float]] = {}
        self.history: list[tuple[float, str, str]] = []

    # -- link failures ----------------------------------------------------------

    def fail_link(self, a: str, b: str, duration: Optional[float] = None) -> None:
        """Take the link a--b down for ``duration`` seconds."""
        until = float("inf") if duration is None else self.sim.now + duration
        self._down_links[_edge(a, b)] = until
        self.history.append((self.sim.now, "fail_link", f"{a}--{b}"))

    def restore_link(self, a: str, b: str) -> None:
        self._down_links.pop(_edge(a, b), None)
        self.history.append((self.sim.now, "restore_link", f"{a}--{b}"))

    def link_down(self, a: str, b: str) -> bool:
        until = self._down_links.get(_edge(a, b))
        if until is None:
            return False
        if self.sim.now >= until:
            del self._down_links[_edge(a, b)]
            return False
        return True

    # -- site failures ------------------------------------------------------------

    def fail_site(self, name: str, duration: Optional[float] = None) -> None:
        """Take an entire site offline (all its links appear down)."""
        until = float("inf") if duration is None else self.sim.now + duration
        self._down_sites[name] = until
        self.history.append((self.sim.now, "fail_site", name))

    def restore_site(self, name: str) -> None:
        self._down_sites.pop(name, None)
        self.history.append((self.sim.now, "restore_site", name))

    def site_down(self, name: str) -> bool:
        until = self._down_sites.get(name)
        if until is None:
            return False
        if self.sim.now >= until:
            del self._down_sites[name]
            return False
        return True

    # -- partitions ------------------------------------------------------------------

    def partition(self, group_a: Iterable[str], group_b: Iterable[str],
                  duration: Optional[float] = None) -> None:
        """Block all traffic between two groups of sites."""
        until = float("inf") if duration is None else self.sim.now + duration
        self._partitions.append((frozenset(group_a), frozenset(group_b), until))
        self.history.append((self.sim.now, "partition",
                             f"{sorted(group_a)}|{sorted(group_b)}"))

    def heal_partitions(self) -> None:
        self._partitions.clear()
        self.history.append((self.sim.now, "heal_partitions", ""))

    def partitioned(self, src: str, dst: str) -> bool:
        now = self.sim.now
        alive = []
        hit = False
        for ga, gb, until in self._partitions:
            if now >= until:
                continue
            alive.append((ga, gb, until))
            if (src in ga and dst in gb) or (src in gb and dst in ga):
                hit = True
        self._partitions = alive
        return hit

    # -- degradation --------------------------------------------------------------------

    def degrade_link(self, a: str, b: str, *, extra_loss: float,
                     duration: Optional[float] = None) -> None:
        """Make a link flaky: add ``extra_loss`` to its loss probability."""
        if not 0.0 <= extra_loss <= 1.0:
            raise ValueError("extra_loss must be in [0, 1]")
        until = float("inf") if duration is None else self.sim.now + duration
        self._degraded[_edge(a, b)] = (extra_loss, until)
        self.history.append((self.sim.now, "degrade_link", f"{a}--{b}"))

    def extra_loss(self, a: str, b: str) -> float:
        entry = self._degraded.get(_edge(a, b))
        if entry is None:
            return 0.0
        loss, until = entry
        if self.sim.now >= until:
            del self._degraded[_edge(a, b)]
            return 0.0
        return loss

    # -- aggregate view --------------------------------------------------------------------

    def blocked_edges(self, topology) -> set[tuple[str, str]]:
        """All edges currently unusable (down links + links of down sites)."""
        blocked = {e for e in list(self._down_links)
                   if self.link_down(*e)}
        for a, b, _link in topology.links():
            if self.site_down(a) or self.site_down(b):
                blocked.add(_edge(a, b))
        return blocked

    def any_active(self) -> bool:
        """True if any fault is currently in force."""
        now = self.sim.now
        return (any(now < u for u in self._down_links.values())
                or any(now < u for u in self._down_sites.values())
                or any(now < u for *_, u in self._partitions)
                or any(now < u for _, u in self._degraded.values()))
