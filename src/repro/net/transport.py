"""Point-to-point transfers over the simulated WAN.

:class:`Network` turns "send ``size`` bytes from site A to site B" into a
simulated delay (propagation + serialization + jitter) or a failure
(:class:`PacketLost`, :class:`Unreachable`).  Higher layers — the message
bus and RPC in :mod:`repro.comm` — add reliability semantics on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.net.faults import FaultInjector
from repro.net.topology import LOCAL_LINK, Topology
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import Event
    from repro.sim.kernel import Simulator


class NetworkError(Exception):
    """Base class for transport-level failures."""


class PacketLost(NetworkError):
    """The transfer was dropped by a lossy/degraded link."""


class Unreachable(NetworkError):
    """No alive path exists between the endpoints."""


class Network:
    r"""The simulated internetwork connecting AISLE sites.

    Parameters
    ----------
    sim:
        The discrete-event kernel.
    topology:
        Site/link graph.
    rng:
        Numpy generator used for jitter and loss draws.
    faults:
        Optional :class:`FaultInjector`; when omitted a private, quiet one
        is created.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        transfer counters and the ``net.transfer_latency`` histogram land
        there (a private registry is created when omitted, keeping the
        ``stats`` API identical either way).

    Notes
    -----
    Delivery time for an ``n``-hop path of links :math:`l_1 \dots l_n` is

    .. math::

       T(\text{size}) = \sum_{i=1}^{n} \left( \text{latency}_i
           + \frac{\text{size}}{\text{bandwidth}_i}
           + \max\bigl(0,\, \mathcal{N}(0, \text{jitter}_i^2)\bigr) \right)

    which captures store-and-forward serialization per hop without
    modelling queueing contention (adequate for the latency-scale claims
    in E4/E5; see DESIGN.md).
    """

    def __init__(self, sim: "Simulator", topology: Topology,
                 rng: np.random.Generator,
                 faults: Optional[FaultInjector] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.rng = rng
        self.faults = faults or FaultInjector(sim)
        self.metrics = metrics or MetricsRegistry()
        self.stats = self.metrics.stats("net", {
            "transfers": 0, "bytes": 0.0, "lost": 0, "unreachable": 0,
            "total_latency": 0.0,
        })
        self.latency_hist = self.metrics.histogram("net.transfer_latency")

    # -- path/latency computation -------------------------------------------

    def route(self, src: str, dst: str) -> list[str]:
        """The node path a transfer would take right now.

        Raises :class:`Unreachable` if faults disconnect the endpoints.
        """
        if self.faults.site_down(src) or self.faults.site_down(dst):
            raise Unreachable(f"endpoint site down ({src} -> {dst})")
        if self.faults.partitioned(src, dst):
            raise Unreachable(f"network partition blocks {src} -> {dst}")
        blocked = self.faults.blocked_edges(self.topology)
        try:
            return self.topology.path(src, dst, blocked=blocked)
        except Exception as exc:
            raise Unreachable(f"no path {src} -> {dst}: {exc}") from exc

    def sample_delay(self, path: list[str], size_bytes: float) -> float:
        """Sample the end-to-end delay for a transfer along ``path``."""
        if len(path) <= 1:
            link = LOCAL_LINK
            return link.latency_s + size_bytes / link.bandwidth_Bps
        total = 0.0
        for link in self.topology.path_links(path):
            total += link.latency_s + size_bytes / link.bandwidth_Bps
            if link.jitter_s > 0:
                total += max(0.0, float(self.rng.normal(0.0, link.jitter_s)))
        return total

    def _lost(self, path: list[str]) -> bool:
        if len(path) <= 1:
            return False
        for (a, b), link in zip(zip(path, path[1:]),
                                self.topology.path_links(path)):
            p = link.loss_prob + self.faults.extra_loss(a, b)
            if p > 0 and self.rng.random() < p:
                return True
        return False

    # -- transfer API -------------------------------------------------------------

    def send(self, src: str, dst: str, size_bytes: float = 1024.0) -> "Event":
        """Start a transfer; the returned event fires on delivery.

        On success the event value is the measured delivery latency.  On
        loss/unreachability the event fails with a :class:`NetworkError`
        (after the time the failure took to manifest).
        """
        ev = self.sim.event()
        self.stats["transfers"] += 1
        self.stats["bytes"] += size_bytes
        try:
            path = self.route(src, dst)
        except Unreachable as exc:
            self.stats["unreachable"] += 1
            # Unreachability is detected after a connect-timeout-ish delay.
            ev.fail(exc, delay=0.001)
            return ev
        delay = self.sample_delay(path, size_bytes)
        if self._lost(path):
            self.stats["lost"] += 1
            ev.fail(PacketLost(f"{src} -> {dst} transfer dropped"), delay=delay)
            return ev
        self.stats["total_latency"] += delay
        self.latency_hist.observe(delay)
        ev.succeed(delay, delay=delay)
        return ev

    def transfer(self, src: str, dst: str, size_bytes: float = 1024.0):
        """Generator helper: ``latency = yield from net.transfer(...)``."""
        latency = yield self.send(src, dst, size_bytes)
        return latency

    def mean_latency(self) -> float:
        """Average measured delivery latency over successful transfers."""
        n = self.stats["transfers"] - self.stats["lost"] - self.stats["unreachable"]
        return self.stats["total_latency"] / n if n else 0.0
