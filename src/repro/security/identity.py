"""Federated identities and cross-institutional trust.

Each institution runs a :class:`FederatedIdentityProvider` (IdP) that
issues credentials for its members.  A :class:`TrustFabric` records which
IdPs trust each other, so a token minted at ORNL can be honoured at ANL —
"federated identity management" from §3.4's research priorities.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.security.tokens import Token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class Identity:
    """A principal: a human scientist, an agent, or a service.

    Attributes
    ----------
    subject:
        Unique principal name, e.g. ``"planner-agent@ornl"``.
    institution:
        Home institution (determines the issuing IdP).
    attributes:
        ABAC attributes, e.g. ``(("role", "agent"), ("clearance", 2))``.
    """

    subject: str
    institution: str
    attributes: tuple[tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == key:
                return v
        return default

    @staticmethod
    def make(subject: str, institution: str, **attributes: Any) -> "Identity":
        return Identity(subject=subject, institution=institution,
                        attributes=tuple(sorted(attributes.items())))


class FederatedIdentityProvider:
    """An institution's token issuer.

    The signing key is private to the IdP; tokens are MAC'd with it, so
    only an IdP holding the same key can validate (or mint) its tokens.
    """

    def __init__(self, sim: "Simulator", institution: str,
                 secret: Optional[bytes] = None,
                 default_ttl_s: float = 300.0) -> None:
        self.sim = sim
        self.institution = institution
        self._secret = secret or hashlib.blake2b(
            f"idp:{institution}".encode(), digest_size=16).digest()
        self.default_ttl_s = default_ttl_s
        self._identities: dict[str, Identity] = {}
        self._revoked: set[str] = set()
        self.stats = {"issued": 0, "validated": 0, "rejected": 0}

    # -- enrolment ------------------------------------------------------------

    def enroll(self, identity: Identity) -> Identity:
        if identity.institution != self.institution:
            raise ValueError(
                f"{identity.subject} belongs to {identity.institution}, "
                f"not {self.institution}")
        self._identities[identity.subject] = identity
        return identity

    def known(self, subject: str) -> bool:
        return subject in self._identities

    # -- token lifecycle ---------------------------------------------------------

    def issue(self, subject: str, scopes: tuple[str, ...] = ("*",),
              ttl_s: Optional[float] = None) -> Token:
        """Mint a short-lived token for an enrolled principal."""
        identity = self._identities.get(subject)
        if identity is None:
            raise KeyError(f"{subject!r} is not enrolled at {self.institution}")
        token = Token.mint(
            secret=self._secret, subject=subject, issuer=self.institution,
            scopes=scopes, attributes=dict(identity.attributes),
            issued_at=self.sim.now,
            expires_at=self.sim.now + (ttl_s or self.default_ttl_s),
            ids=self.sim.ids)
        self.stats["issued"] += 1
        return token

    def revoke(self, token: Token) -> None:
        """Invalidate a specific token before its natural expiry."""
        self._revoked.add(token.token_id)

    def revoke_subject(self, subject: str) -> None:
        """Remove a principal entirely; future validations fail."""
        self._identities.pop(subject, None)
        self._revoked.add(f"subject:{subject}")

    def validate(self, token: Token) -> bool:
        """Check signature, expiry, and revocation at the current sim time."""
        self.stats["validated"] += 1
        ok = (token.verify(self._secret)
              and token.issuer == self.institution
              and token.expires_at > self.sim.now
              and token.token_id not in self._revoked
              and f"subject:{token.subject}" not in self._revoked)
        if not ok:
            self.stats["rejected"] += 1
        return ok


class TrustFabric:
    """Which institutions honour each other's credentials.

    Trust is directional: ``trust(a, b)`` means *a accepts tokens issued
    by b*.  The federation helper :meth:`federate` makes a clique.
    """

    def __init__(self) -> None:
        self._providers: dict[str, FederatedIdentityProvider] = {}
        self._trusts: set[tuple[str, str]] = set()

    def add_provider(self, idp: FederatedIdentityProvider) -> FederatedIdentityProvider:
        self._providers[idp.institution] = idp
        self._trusts.add((idp.institution, idp.institution))
        return idp

    def provider(self, institution: str) -> FederatedIdentityProvider:
        return self._providers[institution]

    def trust(self, truster: str, issuer: str) -> None:
        if truster not in self._providers or issuer not in self._providers:
            raise KeyError("both institutions must have providers")
        self._trusts.add((truster, issuer))

    def distrust(self, truster: str, issuer: str) -> None:
        if truster != issuer:
            self._trusts.discard((truster, issuer))

    def trusts(self, truster: str, issuer: str) -> bool:
        return (truster, issuer) in self._trusts

    def federate(self, institutions: Optional[list[str]] = None) -> None:
        """Establish mutual trust among ``institutions`` (default: all)."""
        insts = institutions or list(self._providers)
        for a in insts:
            for b in insts:
                self._trusts.add((a, b))

    def validate_at(self, institution: str, token: Token) -> bool:
        """Would ``institution`` accept this token?

        Requires (1) the local domain to trust the issuer and (2) the
        issuer's own IdP to vouch for the token.
        """
        if not self.trusts(institution, token.issuer):
            return False
        issuer_idp = self._providers.get(token.issuer)
        if issuer_idp is None:
            return False
        return issuer_idp.validate(token)
