"""Zero-trust gateway: continuous authentication + authorization.

Milestone M11 requires "continuous authentication and authorization of
agent interactions while maintaining low-latency communication".  The
:class:`ZeroTrustGateway` is the enforcement point: the message bus and
RPC layer hand it every envelope, and it (1) validates the attached token
through the federated trust fabric, (2) evaluates ABAC policy, (3) records
the decision in the audit log, and (4) charges a small, configurable
verification latency — the quantity E4 sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.security.abac import Decision, PolicyEngine
from repro.security.audit import AuditLog
from repro.security.identity import TrustFabric
from repro.security.tokens import Token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.comm.message import Envelope
    from repro.sim.kernel import Simulator


class SecurityError(Exception):
    """Authentication or authorization failed."""


class ZeroTrustGateway:
    """Per-request verification middleware.

    Parameters
    ----------
    sim:
        Kernel (for timestamps and latency accounting).
    fabric:
        Federated trust fabric used to validate tokens.
    engine:
        ABAC policy engine.
    site_institution:
        Mapping of site name -> owning institution, used to resolve which
        institution's policy governs a message's destination.
    verify_latency_s:
        Simulated cost of one verification (signature check + policy
        evaluation).  Returned from :meth:`verify` so callers can charge
        it on the simulated clock.
    audit:
        Optional audit log.
    """

    def __init__(self, sim: "Simulator", fabric: TrustFabric,
                 engine: PolicyEngine,
                 site_institution: Optional[dict[str, str]] = None,
                 verify_latency_s: float = 0.001,
                 audit: Optional[AuditLog] = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.engine = engine
        self.site_institution = site_institution or {}
        self.verify_latency_s = verify_latency_s
        self.audit = audit or AuditLog(sim)
        self.stats = {"verified": 0, "rejected_authn": 0, "rejected_authz": 0}

    # -- core entry point -----------------------------------------------------

    def verify(self, envelope: "Envelope", action: str) -> float:
        """Verify one envelope; returns the latency to charge.

        Raises :class:`SecurityError` on any authentication or
        authorization failure.  This is called for *every* message — there
        is no session state to hijack, which is precisely the zero-trust
        property.
        """
        return self.verify_resource(envelope, action, {})

    def verify_resource(self, envelope: "Envelope", action: str,
                        resource_attrs: dict[str, Any]) -> float:
        """Like :meth:`verify` but with caller-supplied resource attributes.

        Used by the data mesh so ABAC rules can see e.g. a record's
        ``sensitivity`` when deciding whether it may leave its
        institution.
        """
        dst_institution = self.site_institution.get(
            envelope.dst_site, envelope.dst_site)
        token = envelope.token
        if not isinstance(token, Token):
            self._reject("authn", "<missing>", "", action, dst_institution,
                         "no token attached")
        assert isinstance(token, Token)
        if token.expired(self.sim.now):
            self._reject("authn", token.subject, token.issuer, action,
                         dst_institution, "token expired")
        if not self.fabric.validate_at(dst_institution, token):
            self._reject("authn", token.subject, token.issuer, action,
                         dst_institution, "token not honoured here")
        if not token.permits(action):
            self._reject("authz", token.subject, token.issuer, action,
                         dst_institution, "token scope does not cover action")
        subject_attrs = dict(token.attributes)
        subject_attrs.setdefault("institution", token.issuer)
        subject_attrs.setdefault("subject", token.subject)
        resource = {"institution": dst_institution, "site": envelope.dst_site}
        resource.update(resource_attrs)
        decision, reason = self.engine.decide(
            subject_attrs, action, resource, {"time": self.sim.now})
        if decision is not Decision.ALLOW:
            self._reject("authz", token.subject, token.issuer, action,
                         dst_institution, reason)
        self.stats["verified"] += 1
        self.audit.record(subject=token.subject, institution=token.issuer,
                          action=action, resource=str(resource.get(
                              "record_id", dst_institution)),
                          decision="allow", reason=reason,
                          site=envelope.dst_site)
        return self.verify_latency_s

    def _reject(self, kind: str, subject: str, institution: str, action: str,
                resource: str, reason: str) -> None:
        self.stats[f"rejected_{kind}"] += 1
        self.audit.record(subject=subject, institution=institution,
                          action=action, resource=resource, decision="deny",
                          reason=reason)
        raise SecurityError(f"{kind} failure for {subject!r}: {reason}")

    # -- credential refresh --------------------------------------------------------

    def refresh_loop(self, idp, subject: str, holder: Any,
                     interval_fraction: float = 0.5):
        """Generator: keep ``holder.token`` fresh (spawn as a process).

        Re-issues the credential every ``ttl * interval_fraction`` so the
        holder never presents an expired token — the client half of
        continuous authentication.
        """
        while True:
            token = idp.issue(subject)
            holder.token = token
            ttl = token.expires_at - token.issued_at
            yield self.sim.timeout(max(ttl * interval_fraction, 1e-6))
