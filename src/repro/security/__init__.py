"""Zero-trust security for multi-institutional collaboration (§3.4).

Implements the security stack the paper's research priorities name:
federated identity management (:mod:`repro.security.identity`), short-lived
signed credentials (:mod:`repro.security.tokens`), attribute-based access
control (:mod:`repro.security.abac`), continuous per-message authentication
(:mod:`repro.security.zerotrust`), and an append-only audit trail
(:mod:`repro.security.audit`).

Cryptography is simulated with keyed BLAKE2 MACs — real enough to catch
forged/expired/tampered credentials inside the simulation, while the
*behavioural* properties the milestones quantify (latency cost of
continuous authentication, policy decisions, revocation) are modelled
faithfully.
"""

from repro.security.abac import Decision, Policy, PolicyEngine, Rule
from repro.security.audit import AuditLog
from repro.security.identity import FederatedIdentityProvider, Identity, TrustFabric
from repro.security.tokens import Token, TokenError
from repro.security.zerotrust import SecurityError, ZeroTrustGateway

__all__ = [
    "AuditLog",
    "Decision",
    "FederatedIdentityProvider",
    "Identity",
    "Policy",
    "PolicyEngine",
    "Rule",
    "SecurityError",
    "Token",
    "TokenError",
    "TrustFabric",
    "ZeroTrustGateway",
]
