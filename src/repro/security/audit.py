"""Append-only audit trail for security decisions.

Every zero-trust verification lands here, giving experiments (and
post-incident forensics inside examples) a queryable record of who did
what, where, and whether it was allowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class AuditEntry:
    """One immutable audit record."""

    time: float
    subject: str
    institution: str
    action: str
    resource: str
    decision: str
    reason: str
    site: str = ""


class AuditLog:
    """Append-only log with simple querying.

    Entries cannot be removed or mutated; the only write operation is
    :meth:`record`.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.capacity = capacity
        self._entries: list[AuditEntry] = []
        self.dropped = 0

    def record(self, subject: str, institution: str, action: str,
               resource: str, decision: str, reason: str = "",
               site: str = "") -> AuditEntry:
        entry = AuditEntry(time=self.sim.now, subject=subject,
                           institution=institution, action=action,
                           resource=resource, decision=decision,
                           reason=reason, site=site)
        if self.capacity is not None and len(self._entries) >= self.capacity:
            # Bounded logs drop the oldest entry (ring-buffer semantics)
            # but remember how much history was lost.
            self._entries.pop(0)
            self.dropped += 1
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[AuditEntry]:
        """A defensive copy of all retained entries."""
        return list(self._entries)

    def query(self, *, subject: Optional[str] = None,
              action: Optional[str] = None,
              decision: Optional[str] = None,
              since: Optional[float] = None,
              predicate: Optional[Callable[[AuditEntry], bool]] = None
              ) -> list[AuditEntry]:
        """Filter entries by any combination of fields."""
        out = []
        for e in self._entries:
            if subject is not None and e.subject != subject:
                continue
            if action is not None and e.action != action:
                continue
            if decision is not None and e.decision != decision:
                continue
            if since is not None and e.time < since:
                continue
            if predicate is not None and not predicate(e):
                continue
            out.append(e)
        return out

    def denial_rate(self) -> float:
        """Fraction of retained decisions that were denials."""
        if not self._entries:
            return 0.0
        denied = sum(1 for e in self._entries if e.decision == "deny")
        return denied / len(self._entries)
