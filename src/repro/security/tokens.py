"""Short-lived signed credential tokens.

Tokens are JWT-shaped (claims + MAC) but signed with a keyed BLAKE2 MAC
instead of asymmetric crypto — sufficient inside the simulation to make
forgery and tampering *detectable*, which is the property the zero-trust
layer needs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.ids import IdSequencer, ambient_ids


class TokenError(Exception):
    """Raised for malformed, expired, or unverifiable tokens."""


def _mac(secret: bytes, claims: str) -> str:
    return hashlib.blake2b(claims.encode("utf-8"), key=secret,
                           digest_size=16).hexdigest()


@dataclass(frozen=True)
class Token:
    """An immutable signed credential.

    Attributes
    ----------
    token_id:
        Unique id (supports revocation lists).
    subject / issuer:
        Principal and issuing institution.
    scopes:
        Actions the token permits; ``("*",)`` is a wildcard.
    attributes:
        Copy of the principal's ABAC attributes at issue time.
    issued_at / expires_at:
        Simulation timestamps.
    signature:
        MAC over the canonical claims string.
    """

    token_id: str
    subject: str
    issuer: str
    scopes: tuple[str, ...]
    attributes: tuple[tuple[str, Any], ...]
    issued_at: float
    expires_at: float
    signature: str

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _claims(token_id: str, subject: str, issuer: str,
                scopes: tuple[str, ...],
                attributes: tuple[tuple[str, Any], ...],
                issued_at: float, expires_at: float) -> str:
        return "|".join([
            token_id, subject, issuer, ",".join(scopes),
            ";".join(f"{k}={v!r}" for k, v in attributes),
            f"{issued_at:.9f}", f"{expires_at:.9f}",
        ])

    @classmethod
    def mint(cls, secret: bytes, subject: str, issuer: str,
             scopes: tuple[str, ...], attributes: dict[str, Any],
             issued_at: float, expires_at: float,
             ids: Optional[IdSequencer] = None) -> "Token":
        """Create and sign a token (IdP-side).

        ``ids`` is the world's id sequencer; identity providers pass
        ``sim.ids`` so token ids (which feed revocation lists) are
        world-scoped.  Without it the ambient sequencer is used.
        """
        token_id = (ids or ambient_ids()).label("token", "tok")
        attrs = tuple(sorted(attributes.items()))
        claims = cls._claims(token_id, subject, issuer, tuple(scopes), attrs,
                             issued_at, expires_at)
        return cls(token_id=token_id, subject=subject, issuer=issuer,
                   scopes=tuple(scopes), attributes=attrs,
                   issued_at=issued_at, expires_at=expires_at,
                   signature=_mac(secret, claims))

    # -- verification ----------------------------------------------------------------

    def verify(self, secret: bytes) -> bool:
        """True iff the signature matches the claims under ``secret``."""
        claims = self._claims(self.token_id, self.subject, self.issuer,
                              self.scopes, self.attributes,
                              self.issued_at, self.expires_at)
        return _mac(secret, claims) == self.signature

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def permits(self, action: str) -> bool:
        """Scope check: exact match, wildcard, or prefix scope ``ns:*``."""
        for scope in self.scopes:
            if scope == "*" or scope == action:
                return True
            if scope.endswith(":*") and action.startswith(scope[:-1]):
                return True
        return False

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attributes:
            if k == key:
                return v
        return default

    def tampered_with(self, **overrides: Any) -> "Token":
        """A copy with modified claims but the *old* signature.

        Test helper: the result must fail verification — if it doesn't,
        the MAC scheme is broken.
        """
        fields = {
            "token_id": self.token_id, "subject": self.subject,
            "issuer": self.issuer, "scopes": self.scopes,
            "attributes": self.attributes, "issued_at": self.issued_at,
            "expires_at": self.expires_at, "signature": self.signature,
        }
        fields.update(overrides)
        return Token(**fields)
