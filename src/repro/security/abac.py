"""Attribute-based access control (ABAC).

Policies are ordered rule lists evaluated against (subject attributes,
action, resource attributes, environment).  First matching rule wins;
default deny.  Institutions keep their own policies ("maintaining
institutional autonomy", §3.1 research priorities) and the
:class:`PolicyEngine` composes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class Decision(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


#: A predicate over the full request context.
Condition = Callable[[dict[str, Any], str, dict[str, Any], dict[str, Any]], bool]


@dataclass
class Rule:
    """One ABAC rule.

    Attributes
    ----------
    effect:
        :class:`Decision` applied when the rule matches.
    actions:
        Action patterns: exact, ``"*"``, or prefix ``"ns:*"``.
    subject_match / resource_match:
        Required attribute values (all must be present and equal).
    condition:
        Optional arbitrary predicate over
        ``(subject_attrs, action, resource_attrs, environment)``.
    description:
        Human-readable reason recorded in audit entries.
    """

    effect: Decision
    actions: tuple[str, ...] = ("*",)
    subject_match: dict[str, Any] = field(default_factory=dict)
    resource_match: dict[str, Any] = field(default_factory=dict)
    condition: Optional[Condition] = None
    description: str = ""

    def _action_matches(self, action: str) -> bool:
        for pat in self.actions:
            if pat == "*" or pat == action:
                return True
            if pat.endswith(":*") and action.startswith(pat[:-1]):
                return True
        return False

    def matches(self, subject: dict[str, Any], action: str,
                resource: dict[str, Any], environment: dict[str, Any]) -> bool:
        if not self._action_matches(action):
            return False
        for k, v in self.subject_match.items():
            if subject.get(k) != v:
                return False
        for k, v in self.resource_match.items():
            if resource.get(k) != v:
                return False
        if self.condition is not None:
            return bool(self.condition(subject, action, resource, environment))
        return True


@dataclass
class Policy:
    """An ordered rule list owned by one institution (or the federation)."""

    name: str
    rules: list[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> "Policy":
        self.rules.append(rule)
        return self

    def evaluate(self, subject: dict[str, Any], action: str,
                 resource: dict[str, Any],
                 environment: Optional[dict[str, Any]] = None
                 ) -> Optional[tuple[Decision, Rule]]:
        """First matching rule's decision, or ``None`` if nothing matched."""
        env = environment or {}
        for rule in self.rules:
            if rule.matches(subject, action, resource, env):
                return rule.effect, rule
        return None


class PolicyEngine:
    """Combines a federation-wide policy with per-institution policies.

    Evaluation order: the *resource-owning* institution's policy first,
    then the federation policy; default **deny**.  A DENY anywhere is
    final (deny-overrides within each policy via rule order).
    """

    def __init__(self, federation_policy: Optional[Policy] = None) -> None:
        self.federation_policy = federation_policy or Policy("federation")
        self._institution_policies: dict[str, Policy] = {}
        self.stats = {"evaluations": 0, "allows": 0, "denies": 0}

    def set_policy(self, institution: str, policy: Policy) -> None:
        self._institution_policies[institution] = policy

    def policy_for(self, institution: str) -> Optional[Policy]:
        return self._institution_policies.get(institution)

    def decide(self, subject: dict[str, Any], action: str,
               resource: dict[str, Any],
               environment: Optional[dict[str, Any]] = None
               ) -> tuple[Decision, str]:
        """Return ``(decision, reason)`` for a request."""
        self.stats["evaluations"] += 1
        owner = resource.get("institution")
        for policy in filter(None, [
                self._institution_policies.get(owner) if owner else None,
                self.federation_policy]):
            verdict = policy.evaluate(subject, action, resource, environment)
            if verdict is not None:
                decision, rule = verdict
                self.stats["allows" if decision is Decision.ALLOW
                           else "denies"] += 1
                reason = rule.description or f"{policy.name}:{rule.effect.value}"
                return decision, reason
        self.stats["denies"] += 1
        return Decision.DENY, "default-deny"


def allow_all_within_federation() -> Policy:
    """A permissive federation baseline: any authenticated member may act."""
    return Policy("federation-open").add(Rule(
        effect=Decision.ALLOW,
        description="open federation: any authenticated principal"))


def standard_lab_policy(institution: str) -> Policy:
    """A representative institutional policy used by tests and examples.

    - Local principals may do anything to local resources.
    - Federated agents may operate instruments and read data.
    - Only principals with ``role=operator`` (any institution) may invoke
      safety-critical actions (``instrument:override`` etc.).
    - Export of records tagged ``restricted`` is denied to outsiders.
    """
    return Policy(f"{institution}-standard").add(Rule(
        effect=Decision.DENY,
        actions=("data:export",),
        resource_match={"sensitivity": "restricted"},
        condition=lambda s, a, r, e: s.get("institution") != institution,
        description="restricted data never leaves the institution",
    )).add(Rule(
        effect=Decision.ALLOW,
        actions=("instrument:override", "instrument:estop"),
        subject_match={"role": "operator"},
        description="human operators may override (M4 safeguard)",
    )).add(Rule(
        effect=Decision.DENY,
        actions=("instrument:override", "instrument:estop"),
        description="non-operators may not override",
    )).add(Rule(
        effect=Decision.ALLOW,
        subject_match={"institution": institution},
        description="local principals have full local access",
    )).add(Rule(
        effect=Decision.ALLOW,
        actions=("instrument:*", "data:read", "data:discover", "rpc:*",
                 "publish", "consume"),
        subject_match={"role": "agent"},
        description="federated agents may operate instruments and read data",
    ))
