"""Parameter spaces and the synthetic-landscape machinery.

A :class:`ParameterSpace` mixes continuous dimensions (bounded floats) and
discrete dimensions (categorical choices) — the "nested
discrete-continuous" structure the paper highlights for real SDL hardware
(§3.3, [24]).  A :class:`SyntheticLandscape` places deterministic Gaussian
response peaks in that space, seeded per instance, yielding smooth
multi-modal objectives whose global optimum is known to the test harness
but not to the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ContinuousDim:
    """A bounded continuous parameter, e.g. temperature."""

    name: str
    low: float
    high: float
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def clip(self, value: float) -> float:
        return float(min(max(value, self.low), self.high))

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float, np.floating, np.integer))
                and self.low <= float(value) <= self.high)

    def normalize(self, value: float) -> float:
        """Map to [0, 1]."""
        return (float(value) - self.low) / (self.high - self.low)

    def denormalize(self, x: float) -> float:
        return self.low + float(x) * (self.high - self.low)


@dataclass(frozen=True)
class DiscreteDim:
    """A categorical parameter, e.g. precursor chemistry."""

    name: str
    choices: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.choices) < 2:
            raise ValueError(f"{self.name}: need at least 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: duplicate choices")

    def contains(self, value: Any) -> bool:
        return value in self.choices

    def index(self, value: str) -> int:
        return self.choices.index(value)


Dim = "ContinuousDim | DiscreteDim"


class ParameterSpace:
    """An ordered mix of continuous and discrete dimensions."""

    def __init__(self, dims: Sequence[Any]) -> None:
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dimension names")
        self.dims: tuple[Any, ...] = tuple(dims)
        self.continuous = tuple(d for d in dims if isinstance(d, ContinuousDim))
        self.discrete = tuple(d for d in dims if isinstance(d, DiscreteDim))

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def dim(self, name: str) -> Any:
        for d in self.dims:
            if d.name == name:
                return d
        raise KeyError(name)

    # -- validation ------------------------------------------------------------

    def validate(self, params: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` for missing/extra/out-of-range parameters."""
        expected = {d.name for d in self.dims}
        got = set(params)
        if got != expected:
            missing, extra = expected - got, got - expected
            raise ValueError(
                f"bad parameter set: missing={sorted(missing)} "
                f"extra={sorted(extra)}")
        for d in self.dims:
            if not d.contains(params[d.name]):
                raise ValueError(
                    f"{d.name}={params[d.name]!r} outside the valid domain")

    def contains(self, params: Mapping[str, Any]) -> bool:
        try:
            self.validate(params)
            return True
        except ValueError:
            return False

    # -- sampling and counting -------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Uniform random point in the space."""
        out: dict[str, Any] = {}
        for d in self.dims:
            if isinstance(d, ContinuousDim):
                out[d.name] = float(rng.uniform(d.low, d.high))
            else:
                out[d.name] = str(rng.choice(list(d.choices)))
        return out

    def n_conditions(self, continuous_resolution: int = 100) -> float:
        """Size of the condition space at a given continuous resolution.

        This is how "10^13 possible synthesis conditions" style counts are
        computed for E12.
        """
        n = 1.0
        for d in self.dims:
            n *= (continuous_resolution if isinstance(d, ContinuousDim)
                  else len(d.choices))
        return n

    # -- encoding for surrogate models ------------------------------------------------

    def encode(self, params: Mapping[str, Any]) -> np.ndarray:
        """Encode to a flat vector: normalized continuous + one-hot discrete."""
        parts: list[float] = []
        for d in self.dims:
            if isinstance(d, ContinuousDim):
                parts.append(d.normalize(params[d.name]))
            else:
                onehot = [0.0] * len(d.choices)
                onehot[d.index(params[d.name])] = 1.0
                parts.extend(onehot)
        return np.asarray(parts, dtype=np.float64)

    @property
    def encoded_size(self) -> int:
        return sum(1 if isinstance(d, ContinuousDim) else len(d.choices)
                   for d in self.dims)

    def continuous_vector(self, params: Mapping[str, Any]) -> np.ndarray:
        """Just the normalized continuous coordinates (for per-category GPs)."""
        return np.asarray([d.normalize(params[d.name])
                           for d in self.continuous])

    def discrete_key(self, params: Mapping[str, Any]) -> tuple[str, ...]:
        """The tuple of discrete choices (identifies a continuous subspace)."""
        return tuple(str(params[d.name]) for d in self.discrete)

    def discrete_combinations(self) -> list[tuple[str, ...]]:
        """All combinations of discrete choices (cartesian product)."""
        combos: list[tuple[str, ...]] = [()]
        for d in self.discrete:
            combos = [c + (choice,) for c in combos for choice in d.choices]
        return combos

    def with_discrete(self, key: tuple[str, ...],
                      cont: Mapping[str, float]) -> dict[str, Any]:
        """Assemble a full parameter dict from a discrete key + continuous part."""
        out: dict[str, Any] = dict(cont)
        for d, choice in zip(self.discrete, key):
            out[d.name] = choice
        return out


class Landscape:
    """Base class: a deterministic map from parameters to true properties."""

    #: Names of the properties :meth:`evaluate` returns.
    properties: tuple[str, ...] = ()
    #: The property campaigns usually optimize, and its direction.
    objective: str = ""
    maximize: bool = True

    def __init__(self, space: ParameterSpace) -> None:
        self.space = space

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        """True (noise-free) properties at ``params``."""
        raise NotImplementedError

    def objective_value(self, params: Mapping[str, Any]) -> float:
        """The optimization objective (already sign-adjusted: higher=better)."""
        value = self.evaluate(params)[self.objective]
        return value if self.maximize else -value


class SyntheticLandscape(Landscape):
    """Multi-peak Gaussian response surface over a mixed space.

    For each discrete combination the landscape draws its own set of peaks
    in the continuous subspace, so the choice of chemistry genuinely
    matters: most combinations are mediocre, a few are good, and exactly
    one contains the global optimum.  Everything derives from
    ``(seed, name)`` and is reproducible.

    Parameters
    ----------
    space:
        The parameter space.
    seed / name:
        Determinism root.
    n_peaks:
        Peaks per discrete combination.
    output_range:
        ``(low, high)`` scale of the primary property.
    """

    properties = ("response",)
    objective = "response"

    def __init__(self, space: ParameterSpace, seed: int = 0,
                 name: str = "synthetic", n_peaks: int = 3,
                 output_range: tuple[float, float] = (0.0, 1.0)) -> None:
        super().__init__(space)
        self.seed = seed
        self.name = name
        self.n_peaks = n_peaks
        self.output_range = output_range
        self._rngs = RngRegistry(seed)
        self._combo_cache: dict[tuple[str, ...], dict[str, np.ndarray]] = {}
        self._best: Optional[tuple[float, dict[str, Any]]] = None

    # -- peak placement -----------------------------------------------------------

    def _combo_peaks(self, key: tuple[str, ...]) -> dict[str, np.ndarray]:
        peaks = self._combo_cache.get(key)
        if peaks is None:
            rng = self._rngs.fresh(f"{self.name}/peaks/{'|'.join(key)}")
            d = len(self.space.continuous)
            centers = rng.uniform(0.0, 1.0, size=(self.n_peaks, max(d, 1)))
            widths = rng.uniform(0.08, 0.35, size=self.n_peaks)
            # Combo quality: heavy-tailed so most combos are poor.
            quality = float(rng.beta(1.5, 6.0))
            heights = quality * rng.uniform(0.3, 1.0, size=self.n_peaks)
            heights[0] = quality  # the dominant peak defines combo quality
            peaks = {"centers": centers, "widths": widths, "heights": heights}
            self._combo_cache[key] = peaks
        return peaks

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        self.space.validate(params)
        key = self.space.discrete_key(params)
        peaks = self._combo_peaks(key)
        x = self.space.continuous_vector(params)
        if x.size == 0:
            x = np.zeros(1)
        dist2 = np.sum((peaks["centers"] - x) ** 2, axis=1)
        response = float(np.sum(
            peaks["heights"] * np.exp(-dist2 / (2 * peaks["widths"] ** 2))))
        lo, hi = self.output_range
        return {"response": lo + response * (hi - lo)}

    # -- oracle helpers (test/benchmark side only) ------------------------------------

    def best_estimate(self, n_random: int = 20_000,
                      refine_top: int = 10) -> tuple[float, dict[str, Any]]:
        """Estimate the global optimum by dense random search + local refine.

        Used by experiments to express regret; cached after the first call.
        """
        if self._best is not None:
            return self._best
        rng = self._rngs.fresh(f"{self.name}/oracle")
        best: list[tuple[float, dict[str, Any]]] = []
        for _ in range(n_random):
            p = self.space.sample(rng)
            best.append((self.objective_value(p), p))
        best.sort(key=lambda t: -t[0])
        top_value, top_params = best[0]
        # Local refinement around the best few by coordinate perturbation.
        for value, params in best[:refine_top]:
            current_v, current_p = value, dict(params)
            for scale in (0.05, 0.01, 0.002):
                for _ in range(60):
                    cand = dict(current_p)
                    for dim in self.space.continuous:
                        span = (dim.high - dim.low) * scale
                        cand[dim.name] = dim.clip(
                            cand[dim.name] + rng.normal(0.0, span))
                    v = self.objective_value(cand)
                    if v > current_v:
                        current_v, current_p = v, cand
            if current_v > top_value:
                top_value, top_params = current_v, current_p
        self._best = (top_value, top_params)
        return self._best
