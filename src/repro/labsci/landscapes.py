"""Parameter spaces and the synthetic-landscape machinery.

A :class:`ParameterSpace` mixes continuous dimensions (bounded floats) and
discrete dimensions (categorical choices) — the "nested
discrete-continuous" structure the paper highlights for real SDL hardware
(§3.3, [24]).  A :class:`SyntheticLandscape` places deterministic Gaussian
response peaks in that space, seeded per instance, yielding smooth
multi-modal objectives whose global optimum is known to the test harness
but not to the optimizer.

Batch fast path and the canonical draw-order contract
-----------------------------------------------------

Campaign inner loops (``BayesianOptimizer.ask``, the oracle in
:meth:`SyntheticLandscape.best_estimate`, instrument sweeps) touch the
space thousands of times per decision, so the space carries a vectorized
*raw-matrix* representation next to the per-point dict one:

- a **raw matrix** is ``(n, len(space))`` float64, one column per
  declared dimension — continuous columns hold raw (un-normalized)
  values, discrete columns hold choice *indices*;
- :meth:`ParameterSpace.sample_batch` draws such a matrix with **one
  vectorized RNG call per dimension, in declared dimension order**
  (continuous: ``rng.uniform(low, high, size=n)``; discrete:
  ``rng.integers(n_choices, size=n)``).  This per-dim column draw order
  is the *canonical draw-order contract* for batched sampling: any
  consumer that wants to reproduce a batched draw stream must consume
  the generator in exactly this order.  It deliberately differs from
  the scalar :meth:`sample` stream (which interleaves dims per point) —
  the two agree in distribution (per-dim marginals are identical, and
  the ``bo_ask`` perf workload KS-checks that), not in the exact
  variates, which is why seeded decision hashes moved exactly once when
  the batch path landed (see DESIGN.md);
- :meth:`encode_batch` (from dicts) and :meth:`encode_raw_batch` (from
  a raw matrix) produce the surrogate encoding bit-identically to
  row-wise :meth:`encode`; :meth:`decode_batch` turns raw rows back
  into parameter dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class ContinuousDim:
    """A bounded continuous parameter, e.g. temperature."""

    name: str
    low: float
    high: float
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"{self.name}: low must be < high")

    def clip(self, value: float) -> float:
        return float(min(max(value, self.low), self.high))

    def contains(self, value: Any) -> bool:
        return (isinstance(value, (int, float, np.floating, np.integer))
                and self.low <= float(value) <= self.high)

    def normalize(self, value: float) -> float:
        """Map to [0, 1]."""
        return (float(value) - self.low) / (self.high - self.low)

    def denormalize(self, x: float) -> float:
        return self.low + float(x) * (self.high - self.low)


@dataclass(frozen=True)
class DiscreteDim:
    """A categorical parameter, e.g. precursor chemistry."""

    name: str
    choices: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.choices) < 2:
            raise ValueError(f"{self.name}: need at least 2 choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"{self.name}: duplicate choices")
        # O(1) choice -> index lookups on the batch-encode hot path
        # (object.__setattr__ because the dataclass is frozen).
        object.__setattr__(self, "_choice_index",
                           {c: i for i, c in enumerate(self.choices)})

    def contains(self, value: Any) -> bool:
        return value in self.choices

    def index(self, value: str) -> int:
        try:
            return self._choice_index[value]  # type: ignore[attr-defined]
        except KeyError:
            raise ValueError(f"{value!r} is not in {self.name}") from None


Dim = "ContinuousDim | DiscreteDim"


class ParameterSpace:
    """An ordered mix of continuous and discrete dimensions."""

    def __init__(self, dims: Sequence[Any]) -> None:
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise ValueError("duplicate dimension names")
        self.dims: tuple[Any, ...] = tuple(dims)
        self.continuous = tuple(d for d in dims if isinstance(d, ContinuousDim))
        self.discrete = tuple(d for d in dims if isinstance(d, DiscreteDim))
        self._by_name: dict[str, Any] = {d.name: d for d in self.dims}
        # Per-dim (start, width) column spans in the encoded vector, in
        # declared order, so batch encoders scatter without re-deriving
        # offsets per row.
        spans: list[tuple[int, int]] = []
        offset = 0
        for d in self.dims:
            width = 1 if isinstance(d, ContinuousDim) else len(d.choices)
            spans.append((offset, width))
            offset += width
        self._enc_spans: tuple[tuple[int, int], ...] = tuple(spans)
        self._encoded_size = offset

    def __iter__(self):
        return iter(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def dim(self, name: str) -> Any:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(name) from None

    # -- validation ------------------------------------------------------------

    def validate(self, params: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` for missing/extra/out-of-range parameters."""
        expected = {d.name for d in self.dims}
        got = set(params)
        if got != expected:
            missing, extra = expected - got, got - expected
            raise ValueError(
                f"bad parameter set: missing={sorted(missing)} "
                f"extra={sorted(extra)}")
        for d in self.dims:
            if not d.contains(params[d.name]):
                raise ValueError(
                    f"{d.name}={params[d.name]!r} outside the valid domain")

    def contains(self, params: Mapping[str, Any]) -> bool:
        try:
            self.validate(params)
            return True
        except ValueError:
            return False

    # -- sampling and counting -------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> dict[str, Any]:
        """Uniform random point in the space (scalar path).

        Consumes the generator one variate per dimension per point; the
        batched :meth:`sample_batch` deliberately uses a different (per-dim
        column) consumption order — see the module docstring.
        """
        out: dict[str, Any] = {}
        for d in self.dims:
            if isinstance(d, ContinuousDim):
                out[d.name] = float(rng.uniform(d.low, d.high))
            else:
                out[d.name] = str(rng.choice(list(d.choices)))
        return out

    # -- batched raw-matrix fast path ----------------------------------------------

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` uniform points as a raw ``(n, len(self))`` matrix.

        One vectorized RNG call per dimension, in declared dim order (the
        canonical draw-order contract): continuous dims fill their column
        with ``rng.uniform(low, high, size=n)``, discrete dims with
        ``rng.integers(n_choices, size=n)`` choice indices.  Per-dim
        marginals match the scalar :meth:`sample`; the exact variate
        stream does not (the ``bo_ask`` perf workload witnesses the
        distributional agreement).
        """
        raw = np.empty((n, len(self.dims)), dtype=np.float64)
        for j, d in enumerate(self.dims):
            if isinstance(d, ContinuousDim):
                raw[:, j] = rng.uniform(d.low, d.high, size=n)
            else:
                raw[:, j] = rng.integers(0, len(d.choices), size=n)
        return raw

    def decode_batch(self, raw: np.ndarray) -> list[dict[str, Any]]:
        """Raw matrix rows back into parameter dicts (declared key order)."""
        raw = np.atleast_2d(np.asarray(raw, dtype=np.float64))
        columns: list[list[Any]] = []
        for j, d in enumerate(self.dims):
            if isinstance(d, ContinuousDim):
                columns.append([float(v) for v in raw[:, j]])
            else:
                choices = d.choices
                columns.append([choices[int(v)] for v in raw[:, j]])
        names = [d.name for d in self.dims]
        return [dict(zip(names, point)) for point in zip(*columns)]

    def raw_point(self, params: Mapping[str, Any]) -> np.ndarray:
        """One parameter dict as a raw row (continuous values + choice indices)."""
        row = np.empty(len(self.dims), dtype=np.float64)
        for j, d in enumerate(self.dims):
            if isinstance(d, ContinuousDim):
                row[j] = float(params[d.name])
            else:
                row[j] = d.index(params[d.name])
        return row

    def n_conditions(self, continuous_resolution: int = 100) -> float:
        """Size of the condition space at a given continuous resolution.

        This is how "10^13 possible synthesis conditions" style counts are
        computed for E12.
        """
        n = 1.0
        for d in self.dims:
            n *= (continuous_resolution if isinstance(d, ContinuousDim)
                  else len(d.choices))
        return n

    # -- encoding for surrogate models ------------------------------------------------

    def encode(self, params: Mapping[str, Any]) -> np.ndarray:
        """Encode to a flat vector: normalized continuous + one-hot discrete."""
        parts: list[float] = []
        for d in self.dims:
            if isinstance(d, ContinuousDim):
                parts.append(d.normalize(params[d.name]))
            else:
                onehot = [0.0] * len(d.choices)
                onehot[d.index(params[d.name])] = 1.0
                parts.extend(onehot)
        return np.asarray(parts, dtype=np.float64)

    def encode_batch(self, params_seq: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode many parameter dicts at once: ``(n, encoded_size)``.

        Bit-identical to stacking row-wise :meth:`encode` calls — the
        per-column arithmetic is the same IEEE operation sequence.
        """
        n = len(params_seq)
        X = np.zeros((n, self._encoded_size), dtype=np.float64)
        for d, (start, width) in zip(self.dims, self._enc_spans):
            name = d.name
            if isinstance(d, ContinuousDim):
                col = np.fromiter((float(p[name]) for p in params_seq),
                                  dtype=np.float64, count=n)
                X[:, start] = (col - d.low) / (d.high - d.low)
            else:
                index = d.index
                idx = np.fromiter((index(p[name]) for p in params_seq),
                                  dtype=np.intp, count=n)
                X[np.arange(n), start + idx] = 1.0
        return X

    def encode_raw_batch(self, raw: np.ndarray) -> np.ndarray:
        """Encode a raw ``(n, len(self))`` matrix without building dicts.

        The fully vectorized twin of :meth:`encode_batch`; produces the
        same matrix :meth:`encode` would for the decoded rows.
        """
        raw = np.atleast_2d(np.asarray(raw, dtype=np.float64))
        n = raw.shape[0]
        X = np.zeros((n, self._encoded_size), dtype=np.float64)
        for j, (d, (start, width)) in enumerate(zip(self.dims,
                                                    self._enc_spans)):
            if isinstance(d, ContinuousDim):
                X[:, start] = (raw[:, j] - d.low) / (d.high - d.low)
            else:
                X[np.arange(n), start + raw[:, j].astype(np.intp)] = 1.0
        return X

    @property
    def encoded_size(self) -> int:
        return self._encoded_size

    def continuous_vector(self, params: Mapping[str, Any]) -> np.ndarray:
        """Just the normalized continuous coordinates (for per-category GPs)."""
        return np.asarray([d.normalize(params[d.name])
                           for d in self.continuous])

    def continuous_matrix(
            self, params_seq: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Normalized continuous coordinates for many points at once.

        Row ``i`` equals ``continuous_vector(params_seq[i])`` bit-for-bit.
        """
        n = len(params_seq)
        X = np.empty((n, len(self.continuous)), dtype=np.float64)
        for j, d in enumerate(self.continuous):
            col = np.fromiter((float(p[d.name]) for p in params_seq),
                              dtype=np.float64, count=n)
            X[:, j] = (col - d.low) / (d.high - d.low)
        return X

    def discrete_key(self, params: Mapping[str, Any]) -> tuple[str, ...]:
        """The tuple of discrete choices (identifies a continuous subspace)."""
        return tuple(str(params[d.name]) for d in self.discrete)

    def discrete_combinations(self) -> list[tuple[str, ...]]:
        """All combinations of discrete choices (cartesian product)."""
        combos: list[tuple[str, ...]] = [()]
        for d in self.discrete:
            combos = [c + (choice,) for c in combos for choice in d.choices]
        return combos

    def with_discrete(self, key: tuple[str, ...],
                      cont: Mapping[str, float]) -> dict[str, Any]:
        """Assemble a full parameter dict from a discrete key + continuous part."""
        out: dict[str, Any] = dict(cont)
        for d, choice in zip(self.discrete, key):
            out[d.name] = choice
        return out


class Landscape:
    """Base class: a deterministic map from parameters to true properties."""

    #: Names of the properties :meth:`evaluate` returns.
    properties: tuple[str, ...] = ()
    #: The property campaigns usually optimize, and its direction.
    objective: str = ""
    maximize: bool = True

    def __init__(self, space: ParameterSpace) -> None:
        self.space = space

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        """True (noise-free) properties at ``params``."""
        raise NotImplementedError

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        """Columnar truth for many points: property name -> ``(n,)`` array.

        The base implementation loops :meth:`evaluate`; vectorized
        landscapes override it.  Either way ``evaluate_batch(ps)[k][i] ==
        evaluate(ps[i])[k]``.
        """
        rows = [self.evaluate(p) for p in params_seq]
        return {name: np.asarray([r[name] for r in rows], dtype=np.float64)
                for name in self.properties}

    def objective_value(self, params: Mapping[str, Any]) -> float:
        """The optimization objective (already sign-adjusted: higher=better)."""
        value = self.evaluate(params)[self.objective]
        return value if self.maximize else -value

    def objective_batch(
            self, params_seq: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Sign-adjusted objective for many points at once."""
        values = self.evaluate_batch(params_seq)[self.objective]
        return values if self.maximize else -values


class SyntheticLandscape(Landscape):
    """Multi-peak Gaussian response surface over a mixed space.

    For each discrete combination the landscape draws its own set of peaks
    in the continuous subspace, so the choice of chemistry genuinely
    matters: most combinations are mediocre, a few are good, and exactly
    one contains the global optimum.  Everything derives from
    ``(seed, name)`` and is reproducible.

    Parameters
    ----------
    space:
        The parameter space.
    seed / name:
        Determinism root.
    n_peaks:
        Peaks per discrete combination.
    output_range:
        ``(low, high)`` scale of the primary property.
    """

    properties = ("response",)
    objective = "response"

    def __init__(self, space: ParameterSpace, seed: int = 0,
                 name: str = "synthetic", n_peaks: int = 3,
                 output_range: tuple[float, float] = (0.0, 1.0)) -> None:
        super().__init__(space)
        self.seed = seed
        self.name = name
        self.n_peaks = n_peaks
        self.output_range = output_range
        self._rngs = RngRegistry(seed)
        self._combo_cache: dict[tuple[str, ...], dict[str, np.ndarray]] = {}
        self._best: Optional[tuple[float, dict[str, Any]]] = None

    # -- peak placement -----------------------------------------------------------

    def _combo_peaks(self, key: tuple[str, ...]) -> dict[str, np.ndarray]:
        peaks = self._combo_cache.get(key)
        if peaks is None:
            rng = self._rngs.fresh(f"{self.name}/peaks/{'|'.join(key)}")
            d = len(self.space.continuous)
            centers = rng.uniform(0.0, 1.0, size=(self.n_peaks, max(d, 1)))
            widths = rng.uniform(0.08, 0.35, size=self.n_peaks)
            # Combo quality: heavy-tailed so most combos are poor.
            quality = float(rng.beta(1.5, 6.0))
            heights = quality * rng.uniform(0.3, 1.0, size=self.n_peaks)
            heights[0] = quality  # the dominant peak defines combo quality
            peaks = {"centers": centers, "widths": widths, "heights": heights}
            self._combo_cache[key] = peaks
        return peaks

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        self.space.validate(params)
        key = self.space.discrete_key(params)
        peaks = self._combo_peaks(key)
        x = self.space.continuous_vector(params)
        if x.size == 0:
            x = np.zeros(1)
        dist2 = np.sum((peaks["centers"] - x) ** 2, axis=1)
        response = float(np.sum(
            peaks["heights"] * np.exp(-dist2 / (2 * peaks["widths"] ** 2))))
        lo, hi = self.output_range
        return {"response": lo + response * (hi - lo)}

    def _response_batch(self, keys: Sequence[tuple[str, ...]],
                        Xc: np.ndarray) -> np.ndarray:
        """Raw (unscaled) responses for normalized continuous rows ``Xc``.

        Rows are grouped by discrete key so each combo's peak set is
        fetched once and its Gaussian mixture evaluated for the whole
        group in one broadcast — the same reductions, in the same order,
        as the scalar :meth:`evaluate`, so results are bit-identical.
        """
        n = len(keys)
        if Xc.shape[1] == 0:
            Xc = np.zeros((n, 1))
        response = np.empty(n, dtype=np.float64)
        groups: dict[tuple[str, ...], list[int]] = {}
        for i, key in enumerate(keys):
            groups.setdefault(key, []).append(i)
        for key, rows in groups.items():
            peaks = self._combo_peaks(key)
            idx = np.asarray(rows, dtype=np.intp)
            diff = Xc[idx][:, None, :] - peaks["centers"][None, :, :]
            dist2 = np.sum(diff ** 2, axis=2)
            response[idx] = np.sum(
                peaks["heights"]
                * np.exp(-dist2 / (2 * peaks["widths"] ** 2)), axis=1)
        return response

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        for p in params_seq:
            self.space.validate(p)
        keys = [self.space.discrete_key(p) for p in params_seq]
        response = self._response_batch(
            keys, self.space.continuous_matrix(params_seq))
        lo, hi = self.output_range
        return {"response": lo + response * (hi - lo)}

    # -- oracle helpers (test/benchmark side only) ------------------------------------

    def best_estimate(self, n_random: int = 20_000,
                      refine_top: int = 10) -> tuple[float, dict[str, Any]]:
        """Estimate the global optimum by dense random search + local refine.

        Used by experiments to express regret; cached after the first call.
        """
        if self._best is not None:
            return self._best
        rng = self._rngs.fresh(f"{self.name}/oracle")
        space = self.space
        raw = space.sample_batch(rng, n_random)
        values = self.objective_batch(space.decode_batch(raw))
        order = np.argsort(-values, kind="stable")[:refine_top]
        # Local refinement of the best few by coordinate perturbation,
        # all candidates perturbed and re-evaluated in lockstep batches.
        cand_raw = raw[order].copy()
        cand_vals = values[order].copy()
        cont_cols = np.asarray(
            [j for j, d in enumerate(space.dims)
             if isinstance(d, ContinuousDim)], dtype=np.intp)
        lows = np.asarray([d.low for d in space.continuous])
        highs = np.asarray([d.high for d in space.continuous])
        for scale in (0.05, 0.01, 0.002):
            spans = (highs - lows) * scale
            for _ in range(60):
                prop = cand_raw.copy()
                if cont_cols.size:
                    step = rng.normal(0.0, 1.0,
                                      size=(len(prop), cont_cols.size))
                    prop[:, cont_cols] = np.clip(
                        prop[:, cont_cols] + step * spans, lows, highs)
                vals = self.objective_batch(space.decode_batch(prop))
                improved = vals > cand_vals
                cand_raw[improved] = prop[improved]
                cand_vals[improved] = vals[improved]
        top = int(np.argmax(cand_vals))
        self._best = (float(cand_vals[top]),
                      space.decode_batch(cand_raw[top])[0])
        return self._best
