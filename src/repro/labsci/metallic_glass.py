"""Metallic-glass composition landscape (§1, ref [22]).

Ren et al. accelerated metallic-glass discovery by iterating ML with
high-throughput sputtering across ternary composition spreads.  This
landscape models glass-forming ability (GFA) over a ternary alloy
composition simplex: element fractions must sum to 1, and a handful of
composition islands are glass formers.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.labsci.landscapes import (ContinuousDim, Landscape,
                                     ParameterSpace)
from repro.sim.rng import RngRegistry


def metallic_glass_space() -> ParameterSpace:
    """Two free fractions (the third is 1 - x - y, enforced on evaluate)."""
    return ParameterSpace([
        ContinuousDim("frac_zr", 0.0, 1.0),
        ContinuousDim("frac_cu", 0.0, 1.0),
        ContinuousDim("cooling_rate", 1.0, 6.0, unit="log10(K/s)"),
    ])


class MetallicGlassLandscape(Landscape):
    """Glass-forming ability over the Zr-Cu-Al ternary simplex.

    ``gfa`` in [0, 1] combines composition islands with a cooling-rate
    sigmoid; ``is_glass`` thresholds it at 0.5 (the classification target
    the original work screened for).  Infeasible compositions
    (``frac_zr + frac_cu > 1``) evaluate to zero GFA rather than raising,
    mirroring a sputter system depositing whatever you ask and the sample
    simply being bad.
    """

    properties = ("gfa", "is_glass")
    objective = "gfa"

    def __init__(self, seed: int = 0, n_islands: int = 4) -> None:
        super().__init__(metallic_glass_space())
        self.seed = seed
        rng = RngRegistry(seed).fresh("metallic-glass/islands")
        # Island centers inside the simplex via Dirichlet draws.
        centers = rng.dirichlet((2.0, 2.0, 2.0), size=n_islands)[:, :2]
        self._centers = centers
        self._widths = rng.uniform(0.04, 0.12, size=n_islands)
        self._heights = rng.uniform(0.55, 1.0, size=n_islands)

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        self.space.validate(params)
        x = float(params["frac_zr"])
        y = float(params["frac_cu"])
        if x + y > 1.0:
            return {"gfa": 0.0, "is_glass": 0.0}
        pos = np.array([x, y])
        dist2 = np.sum((self._centers - pos) ** 2, axis=1)
        composition_term = float(np.max(
            self._heights * np.exp(-dist2 / (2 * self._widths ** 2))))
        # Faster cooling always helps; saturating sigmoid in log10 rate.
        rate = float(params["cooling_rate"])
        cooling_term = 1.0 / (1.0 + np.exp(-(rate - 3.0)))
        gfa = min(1.0, composition_term * (0.4 + 0.6 * cooling_term))
        return {"gfa": gfa, "is_glass": 1.0 if gfa >= 0.5 else 0.0}

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        for p in params_seq:
            self.space.validate(p)
        n = len(params_seq)
        x = np.fromiter((float(p["frac_zr"]) for p in params_seq),
                        dtype=np.float64, count=n)
        y = np.fromiter((float(p["frac_cu"]) for p in params_seq),
                        dtype=np.float64, count=n)
        rate = np.fromiter((float(p["cooling_rate"]) for p in params_seq),
                           dtype=np.float64, count=n)
        pos = np.stack([x, y], axis=1)
        diff = pos[:, None, :] - self._centers[None, :, :]
        dist2 = np.sum(diff ** 2, axis=2)
        composition_term = np.max(
            self._heights * np.exp(-dist2 / (2 * self._widths ** 2)), axis=1)
        cooling_term = 1.0 / (1.0 + np.exp(-(rate - 3.0)))
        gfa = np.minimum(1.0, composition_term * (0.4 + 0.6 * cooling_term))
        gfa = np.where(x + y > 1.0, 0.0, gfa)
        return {"gfa": gfa, "is_glass": (gfa >= 0.5).astype(np.float64)}
