"""Electronic polymer film processing landscape (§1, ref [33]).

Wang et al.'s autonomous platform optimizes solution processing of
electronic polymers.  This landscape maps coating and annealing conditions
to film conductivity: a ridge in (coating speed, annealing temperature)
whose position depends on the solvent blend, plus a film-uniformity
property that characterization instruments can image.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.labsci.landscapes import (ContinuousDim, DiscreteDim, Landscape,
                                     ParameterSpace)
from repro.sim.rng import RngRegistry

SOLVENT_BLENDS = ("chloroform", "chlorobenzene", "xylene", "anisole-blend")


def polymer_space() -> ParameterSpace:
    return ParameterSpace([
        DiscreteDim("solvent_blend", SOLVENT_BLENDS),
        ContinuousDim("coating_speed", 0.5, 50.0, unit="mm/s"),
        ContinuousDim("anneal_temp", 60.0, 300.0, unit="C"),
        ContinuousDim("dopant_fraction", 0.0, 0.3),
    ])


class PolymerFilmLandscape(Landscape):
    """Conductivity and uniformity of solution-processed polymer films."""

    properties = ("conductivity", "uniformity")
    objective = "conductivity"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(polymer_space())
        rng = RngRegistry(seed).fresh("polymer/ridge")
        # Per-solvent optimal (log speed, temperature) ridge positions.
        self._opt_log_speed = {
            s: float(rng.uniform(np.log(1.0), np.log(30.0)))
            for s in SOLVENT_BLENDS}
        self._opt_temp = {s: float(rng.uniform(120.0, 260.0))
                          for s in SOLVENT_BLENDS}
        self._solvent_gain = {s: float(rng.uniform(0.5, 1.0))
                              for s in SOLVENT_BLENDS}

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        self.space.validate(params)
        blend = str(params["solvent_blend"])
        log_speed = np.log(float(params["coating_speed"]))
        temp = float(params["anneal_temp"])
        dop = float(params["dopant_fraction"])
        speed_term = np.exp(-((log_speed - self._opt_log_speed[blend])
                              / 0.8) ** 2)
        temp_term = np.exp(-((temp - self._opt_temp[blend]) / 45.0) ** 2)
        # Doping boosts conductivity up to an optimum near 0.18 then hurts.
        dope_term = np.exp(-((dop - 0.18) / 0.1) ** 2)
        gain = self._solvent_gain[blend]
        conductivity = float(
            1200.0 * gain * speed_term * temp_term * (0.3 + 0.7 * dope_term))
        # Fast coating hurts uniformity; annealing helps a little.
        uniformity = float(np.clip(
            1.0 - 0.012 * float(params["coating_speed"])
            + 0.0006 * (temp - 60.0), 0.0, 1.0))
        return {"conductivity": conductivity, "uniformity": uniformity}

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        for p in params_seq:
            self.space.validate(p)
        n = len(params_seq)
        blend_dim = self.space.dim("solvent_blend")
        blend_idx = np.fromiter(
            (blend_dim.index(p["solvent_blend"]) for p in params_seq),
            dtype=np.intp, count=n)
        opt_ls = np.asarray([self._opt_log_speed[s]
                             for s in SOLVENT_BLENDS])[blend_idx]
        opt_t = np.asarray([self._opt_temp[s]
                            for s in SOLVENT_BLENDS])[blend_idx]
        gain = np.asarray([self._solvent_gain[s]
                           for s in SOLVENT_BLENDS])[blend_idx]
        speed = np.fromiter((float(p["coating_speed"]) for p in params_seq),
                            dtype=np.float64, count=n)
        temp = np.fromiter((float(p["anneal_temp"]) for p in params_seq),
                           dtype=np.float64, count=n)
        dop = np.fromiter((float(p["dopant_fraction"]) for p in params_seq),
                          dtype=np.float64, count=n)
        speed_term = np.exp(-((np.log(speed) - opt_ls) / 0.8) ** 2)
        temp_term = np.exp(-((temp - opt_t) / 45.0) ** 2)
        dope_term = np.exp(-((dop - 0.18) / 0.1) ** 2)
        conductivity = (1200.0 * gain * speed_term * temp_term
                        * (0.3 + 0.7 * dope_term))
        uniformity = np.clip(
            1.0 - 0.012 * speed + 0.0006 * (temp - 60.0), 0.0, 1.0)
        return {"conductivity": conductivity, "uniformity": uniformity}
