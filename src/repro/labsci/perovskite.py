"""Lead-free perovskite nanocrystal synthesis landscape (§3.1, ref [24]).

Models the data-driven synthesis problem of Sadeghi et al.'s self-driving
fluidic lab: tune composition and process conditions of a lead-free
(tin/bismuth) halide perovskite to hit a target emission wavelength with
maximal quantum yield.  The campaign objective used by E3/E10 is a
*quality score* combining PLQY with distance from the target wavelength.

Site-specific calibration offsets model the paper's observation that
"equipment calibration differences introduce systematic variations"
(§3.2): the same recipe yields slightly different results at different
facilities, which is exactly what cross-facility knowledge integration
must cope with.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.labsci.landscapes import (ContinuousDim, DiscreteDim,
                                     ParameterSpace, SyntheticLandscape)
from repro.sim.rng import RngRegistry

B_CATIONS = ("Sn", "Bi", "Sb", "Ge")
A_CATIONS = ("Cs", "FA", "MA")


def perovskite_space() -> ParameterSpace:
    return ParameterSpace([
        DiscreteDim("b_cation", B_CATIONS),
        DiscreteDim("a_cation", A_CATIONS),
        ContinuousDim("halide_ratio", 0.0, 1.0),   # Br/(Br+I)
        ContinuousDim("temperature", 40.0, 180.0, unit="C"),
        ContinuousDim("residence_time", 10.0, 300.0, unit="s"),
        ContinuousDim("ligand_ratio", 0.1, 4.0),
    ])


class PerovskiteLandscape(SyntheticLandscape):
    """PLQY + emission wavelength of lead-free perovskite nanocrystals."""

    properties = ("plqy", "emission_nm", "quality")
    objective = "quality"

    def __init__(self, seed: int = 0, target_nm: float = 520.0,
                 site: str = "", calibration_scale: float = 0.0) -> None:
        super().__init__(perovskite_space(), seed=seed, name="perovskite",
                         n_peaks=3, output_range=(0.0, 0.95))
        self.target_nm = target_nm
        self.site = site
        # Per-site systematic offsets: small shifts in effective
        # temperature and halide incorporation.
        if site and calibration_scale > 0:
            rng = RngRegistry(seed).fresh(f"perovskite/site-cal/{site}")
            self._temp_offset = float(rng.normal(0.0, 4.0 * calibration_scale))
            self._halide_offset = float(
                rng.normal(0.0, 0.02 * calibration_scale))
        else:
            self._temp_offset = 0.0
            self._halide_offset = 0.0

    def _effective_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        eff = dict(params)
        t_dim = self.space.dim("temperature")
        h_dim = self.space.dim("halide_ratio")
        eff["temperature"] = t_dim.clip(
            float(params["temperature"]) + self._temp_offset)
        eff["halide_ratio"] = h_dim.clip(
            float(params["halide_ratio"]) + self._halide_offset)
        return eff

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        self.space.validate(params)
        eff = self._effective_params(params)
        base = super().evaluate(eff)
        plqy = min(base["response"], 1.0)
        # Emission tracks halide ratio (Br-rich = blue, I-rich = red) and
        # B-site cation.
        emission = (690.0 - 210.0 * float(eff["halide_ratio"])
                    + self._CATION_SHIFT[str(eff["b_cation"])])
        # Quality: PLQY discounted by distance from the target wavelength
        # (30 nm tolerance scale).
        wavelength_match = float(np.exp(-((emission - self.target_nm)
                                          / 30.0) ** 2))
        quality = plqy * (0.25 + 0.75 * wavelength_match)
        return {"plqy": plqy, "emission_nm": float(emission),
                "quality": float(quality)}

    _CATION_SHIFT = {"Sn": 0.0, "Bi": 35.0, "Sb": 18.0, "Ge": -12.0}

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        for p in params_seq:
            self.space.validate(p)
        n = len(params_seq)
        # Effective (site-calibrated) continuous columns, normalized in
        # declared order — same clip + normalize ops as _effective_params
        # feeding the scalar path.
        Xc = np.empty((n, len(self.space.continuous)), dtype=np.float64)
        halide_eff = None
        for j, d in enumerate(self.space.continuous):
            col = np.fromiter((float(p[d.name]) for p in params_seq),
                              dtype=np.float64, count=n)
            if d.name == "temperature":
                col = np.clip(col + self._temp_offset, d.low, d.high)
            elif d.name == "halide_ratio":
                col = np.clip(col + self._halide_offset, d.low, d.high)
                halide_eff = col
            Xc[:, j] = (col - d.low) / (d.high - d.low)
        keys = [self.space.discrete_key(p) for p in params_seq]
        lo, hi = self.output_range
        response = lo + self._response_batch(keys, Xc) * (hi - lo)
        plqy = np.minimum(response, 1.0)
        shift = np.fromiter(
            (self._CATION_SHIFT[str(p["b_cation"])] for p in params_seq),
            dtype=np.float64, count=n)
        emission = 690.0 - 210.0 * halide_eff + shift
        wavelength_match = np.exp(-((emission - self.target_nm) / 30.0) ** 2)
        quality = plqy * (0.25 + 0.75 * wavelength_match)
        return {"plqy": plqy, "emission_nm": emission, "quality": quality}
