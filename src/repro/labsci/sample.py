"""Physical samples flowing between instruments.

A :class:`Sample` is created by a synthesis instrument and carries its
*true* properties privately; characterization instruments read them
through :meth:`Sample.true_property` and add their own noise.  Orchestration
code must never touch the truth directly — that is the simulation's
stand-in for "you have to actually measure it".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.sim.ids import next_label


@dataclass
class Sample:
    """A synthesized specimen.

    Attributes
    ----------
    sample_id:
        Unique identifier.
    params:
        Synthesis parameters that produced it.
    site:
        Site where it physically resides (shipping between sites takes
        simulated time; see :class:`repro.core.federation.FederationManager`).
    state:
        Processing state, mutated by e.g. annealing steps.
    provenance:
        Ordered list of (time, instrument, operation) records.
    """

    params: dict[str, Any]
    site: str = ""
    sample_id: str = ""
    state: dict[str, Any] = field(default_factory=dict)
    provenance: list[tuple[float, str, str]] = field(default_factory=list)
    _true_properties: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.sample_id:
            # Ambient world allocation (repro.sim.ids): samples synthesized
            # inside a simulation draw from that world's "sample" stream.
            self.sample_id = next_label("sample")

    @classmethod
    def synthesize(cls, params: Mapping[str, Any], landscape,
                   site: str = "") -> "Sample":
        """Create a sample whose truth comes from ``landscape``."""
        true_props = landscape.evaluate(params)
        return cls(params=dict(params), site=site,
                   _true_properties=dict(true_props))

    @classmethod
    def synthesize_batch(cls, params_list: "list[Mapping[str, Any]]",
                         landscape, site: str = "") -> "list[Sample]":
        """Create many samples from one vectorized landscape evaluation.

        Truth values match per-sample :meth:`synthesize` exactly; sample
        ids are minted in list order.
        """
        props = landscape.evaluate_batch(params_list)
        names = list(props)
        return [cls(params=dict(p), site=site,
                    _true_properties={k: float(props[k][i]) for k in names})
                for i, p in enumerate(params_list)]

    def true_property(self, name: str) -> float:
        """Ground truth access — instruments only."""
        return self._true_properties[name]

    def true_properties(self) -> dict[str, float]:
        return dict(self._true_properties)

    def record(self, time: float, instrument: str, operation: str) -> None:
        self.provenance.append((time, instrument, operation))

    def apply_transform(self, name: str, factor: float) -> None:
        """Processing steps (annealing etc.) scale a true property."""
        if name in self._true_properties:
            self._true_properties[name] *= factor
        self.state[f"transformed:{name}"] = self.state.get(
            f"transformed:{name}", 1.0) * factor
