"""Synthetic ground-truth science.

The paper's laboratories act on the physical world; this package *is* the
physical world of the reproduction.  Each module defines a deterministic
response landscape — composition/processing parameters in, material
properties out — that simulated instruments sample (with their own noise)
and optimization campaigns explore.

Landscapes mirror the systems the paper cites: Smart Dope's 10^13-condition
quantum-dot space (:mod:`repro.labsci.quantum_dots`), lead-free perovskite
nanocrystal synthesis (:mod:`repro.labsci.perovskite`), metallic-glass
composition screening (:mod:`repro.labsci.metallic_glass`), and electronic
polymer film processing (:mod:`repro.labsci.polymer`).
"""

from repro.labsci.landscapes import (ContinuousDim, DiscreteDim, Landscape,
                                     ParameterSpace, SyntheticLandscape)
from repro.labsci.metallic_glass import MetallicGlassLandscape
from repro.labsci.perovskite import PerovskiteLandscape
from repro.labsci.polymer import PolymerFilmLandscape
from repro.labsci.quantum_dots import QuantumDotLandscape
from repro.labsci.sample import Sample

__all__ = [
    "ContinuousDim",
    "DiscreteDim",
    "Landscape",
    "MetallicGlassLandscape",
    "ParameterSpace",
    "PerovskiteLandscape",
    "PolymerFilmLandscape",
    "QuantumDotLandscape",
    "Sample",
    "SyntheticLandscape",
]
