"""Smart Dope-style quantum-dot synthesis landscape (§3.3, ref [23]).

The paper's motivating example navigates ~10^13 possible synthesis
conditions for metal-halide-doped quantum dots.  This landscape reproduces
the *shape* of that problem: a nested discrete-continuous space (dopant ×
ligand × solvent × halide source discretes, four continuous process
knobs) whose condition count at experimental resolution exceeds 10^13,
with properties (photoluminescence quantum yield, emission wavelength,
stability) that reward a narrow region of one particular chemistry.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.labsci.landscapes import (ContinuousDim, DiscreteDim,
                                     ParameterSpace, SyntheticLandscape)

DOPANTS = ("Ag", "Cu", "Mn", "Zn", "In", "Ga", "Al", "Sn")
LIGANDS = ("oleylamine", "oleic-acid", "TOP", "DDT", "octylamine",
           "hexanethiol", "MPA", "PEG-thiol")
SOLVENTS = ("toluene", "octadecene", "DMF", "DMSO")
HALIDE_SOURCES = ("PbBr2", "PbI2", "PbCl2", "ZnBr2", "ZnI2")


def quantum_dot_space() -> ParameterSpace:
    """The Smart Dope-like synthesis condition space.

    At a resolution of 100 steps per continuous knob the space has
    8 * 8 * 4 * 5 * 100^4 = 1.28e11 conditions; at the 316-step resolution
    a fluidic SDL can actually address, 1.28e13 — the "10^13" in the
    paper.
    """
    return ParameterSpace([
        DiscreteDim("dopant", DOPANTS),
        DiscreteDim("ligand", LIGANDS),
        DiscreteDim("solvent", SOLVENTS),
        DiscreteDim("halide_source", HALIDE_SOURCES),
        ContinuousDim("temperature", 60.0, 220.0, unit="C"),
        ContinuousDim("dopant_conc", 0.001, 0.5, unit="mol/L"),
        ContinuousDim("residence_time", 5.0, 600.0, unit="s"),
        ContinuousDim("flow_ratio", 0.05, 0.95, unit=""),
    ])


class QuantumDotLandscape(SyntheticLandscape):
    """PLQY / emission wavelength / stability of doped quantum dots.

    ``plqy`` (the objective) is a multi-peak synthetic surface in [0, 1].
    ``emission_nm`` shifts with dopant concentration and temperature around
    a per-dopant base wavelength; ``stability`` correlates with PLQY but
    penalizes extreme temperatures.
    """

    properties = ("plqy", "emission_nm", "stability")
    objective = "plqy"

    #: Base emission wavelength per dopant (nm).
    _BASE_NM = {d: 480.0 + 22.0 * i for i, d in enumerate(DOPANTS)}

    def __init__(self, seed: int = 0) -> None:
        super().__init__(quantum_dot_space(), seed=seed, name="qd",
                         n_peaks=4, output_range=(0.0, 1.0))

    def evaluate(self, params: Mapping[str, Any]) -> dict[str, float]:
        base = super().evaluate(params)
        plqy = min(base["response"], 1.0)
        t = float(params["temperature"])
        conc = float(params["dopant_conc"])
        emission = (self._BASE_NM[str(params["dopant"])]
                    + 60.0 * np.tanh(3.0 * conc)
                    + 0.08 * (t - 140.0))
        # Stability favours moderate temperature and good crystallinity
        # (proxied by PLQY).
        t_penalty = ((t - 140.0) / 160.0) ** 2
        stability = max(0.0, min(1.0, 0.6 * plqy + 0.4 * (1.0 - t_penalty)))
        return {"plqy": plqy, "emission_nm": float(emission),
                "stability": stability}

    def evaluate_batch(
            self, params_seq: Sequence[Mapping[str, Any]],
    ) -> dict[str, np.ndarray]:
        base = super().evaluate_batch(params_seq)
        n = len(params_seq)
        plqy = np.minimum(base["response"], 1.0)
        t = np.fromiter((float(p["temperature"]) for p in params_seq),
                        dtype=np.float64, count=n)
        conc = np.fromiter((float(p["dopant_conc"]) for p in params_seq),
                           dtype=np.float64, count=n)
        base_nm = np.fromiter(
            (self._BASE_NM[str(p["dopant"])] for p in params_seq),
            dtype=np.float64, count=n)
        emission = base_nm + 60.0 * np.tanh(3.0 * conc) + 0.08 * (t - 140.0)
        t_penalty = ((t - 140.0) / 160.0) ** 2
        stability = np.clip(0.6 * plqy + 0.4 * (1.0 - t_penalty), 0.0, 1.0)
        return {"plqy": plqy, "emission_nm": emission,
                "stability": stability}

    def n_conditions_at_sdl_resolution(self) -> float:
        """Condition count at fluidic-SDL addressing resolution (~10^13)."""
        return self.space.n_conditions(continuous_resolution=316)
