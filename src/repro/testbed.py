"""Fluent testbed builder — one readable chain instead of 8-kwarg wiring.

Every example and benchmark used to copy-paste the same dance: construct
a :class:`~repro.core.federation.FederationManager`, call ``add_lab`` with
half a dozen keywords, then ``make_orchestrator`` with more.  The
:class:`Testbed` facade replaces that with a declarative chain::

    built = (Testbed(seed=42, n_sites=2)
             .site("site-0")
             .with_instruments(synthesis="flow", vendor="kelvin-sci")
             .with_planner(mode="hierarchical")
             .with_verification()
             .build())
    result = built.run(CampaignSpec(name="qd", objective_key="plqy",
                                    max_experiments=60))

Builders only *record* configuration; :meth:`Testbed.build` performs all
construction in declaration order through the FederationManager, so a
Testbed-built world is event-for-event identical to the hand-wired one on
the same seed (covered by tests/obs/test_testbed.py).

The old ``FederationManager`` / ``HierarchicalOrchestrator`` constructors
keep working — the builder is sugar, not a fork.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.campaign import CampaignResult, CampaignSpec
from repro.core.report import CampaignReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import CampaignService
from repro.core.federation import FederationManager, LabSite
from repro.core.knowledge import KnowledgeBase
from repro.core.orchestrator import HierarchicalOrchestrator
from repro.labsci import QuantumDotLandscape
from repro.labsci.landscapes import Landscape
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.kernel import Simulator


def _default_landscape(site: str) -> Landscape:
    return QuantumDotLandscape(seed=7)


@dataclass
class _SiteConfig:
    """Recorded (not yet built) configuration for one laboratory."""

    name: str
    landscape_factory: Callable[[str], Landscape] = _default_landscape
    synthesis_kind: str = "flow"
    vendor: str = "aisle-ref"
    planner_mode: str = "hierarchical"
    hallucination_rate: float = 0.25
    optimizer_factory: Optional[Callable[..., Any]] = None
    safety_envelope: Optional[dict] = None
    forbidden: Optional[list[dict]] = None
    mtbf_hours: float = float("inf")
    repair_time_s: float = 3600.0
    verified: bool = True
    fault_tolerant: bool = False
    alternates: tuple[str, ...] = ()
    share_knowledge: bool = True
    extra_orchestrator_kw: dict[str, Any] = field(default_factory=dict)


class SiteBuilder:
    """Per-site fluent configuration; chain back with :meth:`site` or
    finish with :meth:`build`."""

    def __init__(self, testbed: "Testbed", config: _SiteConfig) -> None:
        self._testbed = testbed
        self._config = config

    # -- lab hardware ------------------------------------------------------

    def with_landscape(self,
                       factory: "Callable[[str], Landscape] | Landscape",
                       ) -> "SiteBuilder":
        """Ground-truth science at this site (factory or instance)."""
        if isinstance(factory, Landscape):
            instance = factory
            self._config.landscape_factory = lambda site: instance
        else:
            self._config.landscape_factory = factory
        return self

    def with_instruments(self, synthesis: str = "flow",
                         vendor: str = "aisle-ref", *,
                         mtbf_hours: float = float("inf"),
                         repair_time_s: float = 3600.0) -> "SiteBuilder":
        """Synthesis rig kind ("flow"/"batch"), vendor dialect, and MTBF."""
        self._config.synthesis_kind = synthesis
        self._config.vendor = vendor
        self._config.mtbf_hours = mtbf_hours
        self._config.repair_time_s = repair_time_s
        return self

    # -- agents ------------------------------------------------------------

    def with_planner(self, mode: str = "hierarchical", *,
                     hallucination_rate: float = 0.25) -> "SiteBuilder":
        self._config.planner_mode = mode
        self._config.hallucination_rate = hallucination_rate
        return self

    def with_optimizer(self, factory: Callable[..., Any]) -> "SiteBuilder":
        """Optimizer factory ``(space, rng) -> AskTellOptimizer``."""
        self._config.optimizer_factory = factory
        return self

    def with_safety(self, envelope: Optional[dict] = None,
                    forbidden: Optional[list[dict]] = None) -> "SiteBuilder":
        self._config.safety_envelope = envelope
        self._config.forbidden = forbidden
        return self

    # -- orchestration -----------------------------------------------------

    def with_verification(self, enabled: bool = True) -> "SiteBuilder":
        """Vet every plan through the physics + twin stack (M8)."""
        self._config.verified = enabled
        return self

    def without_verification(self) -> "SiteBuilder":
        """The "agent usage without verification tools" arm of M8."""
        return self.with_verification(False)

    def with_fault_tolerance(self, *alternates: str) -> "SiteBuilder":
        """Retry/repair/failover execution; name alternate sites to
        fail over to (they must also be declared on this testbed)."""
        self._config.fault_tolerant = True
        self._config.alternates = tuple(alternates)
        return self

    def isolated(self) -> "SiteBuilder":
        """Opt this site out of the shared knowledge base (the cold arm)."""
        self._config.share_knowledge = False
        return self

    def with_orchestrator_options(self, **kw: Any) -> "SiteBuilder":
        """Escape hatch: extra HierarchicalOrchestrator kwargs."""
        self._config.extra_orchestrator_kw.update(kw)
        return self

    # -- chaining ----------------------------------------------------------

    def site(self, name: str, **kw: Any) -> "SiteBuilder":
        """Start configuring the next laboratory."""
        return self._testbed.site(name, **kw)

    def build(self) -> "BuiltTestbed":
        return self._testbed.build()

    # -- testbed-level toggles (explicit pass-throughs) --------------------
    # These mirror the federation-level methods on :class:`Testbed` so a
    # chain can flip them without breaking out of the site builder::
    #
    #     Testbed(seed=1).site("a").with_knowledge().site("b").build()
    #
    # Each delegates to the owning testbed and returns *this* builder,
    # keeping the chain anchored on the current site.

    def secure(self, enabled: bool = True) -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.secure`."""
        self._testbed.secure(enabled)
        return self

    def with_mesh(self, enabled: bool = True, *,
                  shards: Optional[int] = None) -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.with_mesh`."""
        self._testbed.with_mesh(enabled, shards=shards)
        return self

    def with_knowledge(self, policy: str = "corrected") -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.with_knowledge`."""
        self._testbed.with_knowledge(policy)
        return self

    def with_metrics(self, registry: Optional["MetricsRegistry"] = None,
                     ) -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.with_metrics`."""
        self._testbed.with_metrics(registry)
        return self

    def with_tracing(self, tracer: Optional["Tracer"] = None,
                     ) -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.with_tracing`."""
        self._testbed.with_tracing(tracer)
        return self

    def wan_latency(self, latency_s: float) -> "SiteBuilder":
        """Testbed-level: see :meth:`Testbed.wan_latency`."""
        self._testbed.wan_latency(latency_s)
        return self


class Testbed:
    """Declarative builder for a federation of autonomous laboratories.

    Parameters
    ----------
    seed:
        Root seed for every stochastic component.
    n_sites:
        Testbed topology size; defaults to the number of declared sites
        (minimum 2) when omitted.
    objective_key:
        The measured property campaigns optimize.
    sim:
        Optional externally owned :class:`~repro.sim.kernel.Simulator`
        (``Testbed(sim=sim)``); one is created when omitted.
    """

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, seed: int = 0, *, n_sites: Optional[int] = None,
                 objective_key: str = "plqy",
                 sim: Optional[Simulator] = None,
                 wan_latency_s: float = 0.02) -> None:
        self._seed = seed
        self._n_sites = n_sites
        self._objective_key = objective_key
        self._sim = sim
        self._wan_latency_s = wan_latency_s
        self._secure = False
        self._with_mesh = False
        self._mesh_shards: Optional[int] = None
        self._knowledge_policy: Optional[str] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._tracer: Optional[Tracer] = None
        self._sites: list[_SiteConfig] = []

    # -- federation-level toggles -----------------------------------------

    def secure(self, enabled: bool = True) -> "Testbed":
        """Wire the zero-trust stack (identity, ABAC, gateway)."""
        self._secure = enabled
        return self

    def with_mesh(self, enabled: bool = True, *,
                  shards: Optional[int] = None) -> "Testbed":
        """Attach a federated data-mesh node to every lab.

        ``shards`` backs the discovery index with a facility-sharded
        :class:`~repro.data.shard.ShardedDiscoveryIndex` of that many
        shards instead of the flat default.
        """
        self._with_mesh = enabled
        self._mesh_shards = shards if enabled else None
        return self

    def with_knowledge(self, policy: str = "corrected") -> "Testbed":
        """Share a knowledge base (M9) across all non-isolated sites."""
        self._knowledge_policy = policy
        return self

    def with_metrics(self,
                     registry: Optional[MetricsRegistry] = None) -> "Testbed":
        """Collect all counters/histograms in one shared registry."""
        self._metrics = registry if registry is not None else MetricsRegistry()
        return self

    def with_tracing(self, tracer: Optional[Tracer] = None) -> "Testbed":
        """Trace every campaign as a span tree (see :mod:`repro.obs`).

        When ``tracer`` is omitted one is created at :meth:`build` time,
        bound to the built simulator, and exposed as ``built.tracer``.
        """
        self._tracer = tracer if tracer is not None else _DEFERRED_TRACER
        return self

    def wan_latency(self, latency_s: float) -> "Testbed":
        self._wan_latency_s = latency_s
        return self

    # -- sites -------------------------------------------------------------

    def site(self, name: str, *,
             landscape: "Callable[[str], Landscape] | Landscape | None" = None,
             ) -> SiteBuilder:
        """Declare a laboratory at topology site ``name``."""
        if any(cfg.name == name for cfg in self._sites):
            raise ValueError(f"site {name!r} already declared")
        config = _SiteConfig(name=name)
        self._sites.append(config)
        builder = SiteBuilder(self, config)
        if landscape is not None:
            builder.with_landscape(landscape)
        return builder

    # -- construction ------------------------------------------------------

    def build(self) -> "BuiltTestbed":
        """Construct the federation, labs, and orchestrators, in
        declaration order (the determinism contract hinges on this)."""
        if not self._sites:
            raise ValueError("declare at least one site before build()")
        n_sites = self._n_sites
        if n_sites is None:
            n_sites = max(2, len(self._sites))
        tracer = self._tracer
        fed = FederationManager(
            seed=self._seed, n_sites=n_sites,
            objective_key=self._objective_key, secure=self._secure,
            with_mesh=self._with_mesh, mesh_shards=self._mesh_shards,
            wan_latency_s=self._wan_latency_s,
            metrics=self._metrics, sim=self._sim,
            tracer=None if tracer is _DEFERRED_TRACER else tracer)
        if tracer is _DEFERRED_TRACER:
            fed.tracer = Tracer(fed.sim, run_id=f"testbed-{self._seed}")

        for cfg in self._sites:
            fed.add_lab(cfg.name,
                        landscape_factory=cfg.landscape_factory,
                        synthesis_kind=cfg.synthesis_kind, vendor=cfg.vendor,
                        planner_mode=cfg.planner_mode,
                        hallucination_rate=cfg.hallucination_rate,
                        optimizer_factory=cfg.optimizer_factory,
                        safety_envelope=cfg.safety_envelope,
                        forbidden=cfg.forbidden,
                        mtbf_hours=cfg.mtbf_hours,
                        repair_time_s=cfg.repair_time_s)

        knowledge: Optional[KnowledgeBase] = None
        if self._knowledge_policy is not None:
            knowledge = fed.make_knowledge_base(policy=self._knowledge_policy)

        orchestrators: dict[str, HierarchicalOrchestrator] = {}
        for cfg in self._sites:
            lab = fed.labs[cfg.name]
            alternates = [fed.labs[alt] for alt in cfg.alternates]
            kb = knowledge if cfg.share_knowledge else None
            orchestrators[cfg.name] = fed.make_orchestrator(
                lab, verified=cfg.verified, knowledge=kb,
                fault_tolerant=cfg.fault_tolerant,
                alternates=alternates or None,
                **cfg.extra_orchestrator_kw)
        return BuiltTestbed(fed, orchestrators, knowledge)


#: Sentinel: "create a Tracer at build() time, bound to the built sim".
_DEFERRED_TRACER: Tracer = object()  # type: ignore[assignment]


class BuiltTestbed:
    """The assembled world: federation, labs, and ready orchestrators."""

    def __init__(self, fed: FederationManager,
                 orchestrators: dict[str, HierarchicalOrchestrator],
                 knowledge: Optional[KnowledgeBase]) -> None:
        self.fed = fed
        self.orchestrators = orchestrators
        self.knowledge = knowledge

    @property
    def sim(self) -> Simulator:
        return self.fed.sim

    @property
    def metrics(self) -> MetricsRegistry:
        return self.fed.metrics

    @property
    def tracer(self) -> Tracer:
        return self.fed.tracer

    @property
    def chaos(self):
        """The federation's :class:`~repro.resilience.ChaosController`."""
        return self.fed.chaos

    @property
    def labs(self) -> dict[str, LabSite]:
        return self.fed.labs

    def lab(self, site: Optional[str] = None) -> LabSite:
        return self.fed.labs[self._pick(site)]

    def orchestrator(self, site: Optional[str] = None,
                     ) -> HierarchicalOrchestrator:
        return self.orchestrators[self._pick(site)]

    def _pick(self, site: Optional[str]) -> str:
        if site is not None:
            return site
        if len(self.orchestrators) != 1:
            raise ValueError(
                f"multiple sites {sorted(self.orchestrators)}: name one")
        return next(iter(self.orchestrators))

    def run(self, spec: CampaignSpec,
            site: Optional[str] = None) -> CampaignResult:
        """Run one site's campaign to completion and return the result."""
        orch = self.orchestrator(site)
        proc = self.sim.process(orch.run_campaign(spec))
        return self.sim.run(until=proc)

    def run_report(self, spec: CampaignSpec,
                   site: Optional[str] = None) -> "CampaignReport":
        """Run a campaign and return its canonical
        :class:`~repro.core.report.CampaignReport`.

        This is the unified front door: the report is typed, plain-data
        (``.to_dict()`` is picklable and canonical enough for
        :func:`repro.scale.hashing.decision_hash` to digest — its
        ``decisions`` rows pin the full per-experiment sequence, not
        just the winner), and the same shape the campaign service
        returns, so single-site runs, scale-out worlds, and multi-tenant
        service runs all speak one result type.
        """
        result = self.run(spec, site)
        return CampaignReport.from_result(result,
                                          sim_seconds=float(self.sim.now),
                                          target=spec.target)

    def run_summary(self, spec: CampaignSpec,
                    site: Optional[str] = None) -> dict:
        """Deprecated: use ``run_report(spec, site).to_dict()``.

        The report dict is a strict superset of the old summary shape
        (same ``decisions`` rows; extra derived fields like
        ``correctness`` and ``duration_s``).
        """
        warnings.warn(
            "BuiltTestbed.run_summary() is deprecated; use "
            "run_report(spec, site).to_dict() instead",
            DeprecationWarning, stacklevel=2)
        return self.run_report(spec, site).to_dict()

    def as_service(self, *, sites: Optional[list] = None,
                   **kwargs: Any) -> "CampaignService":
        """A multi-tenant :class:`~repro.service.CampaignService` whose
        facility slots are this testbed's sites (one slot per site; pass
        ``sites=[...]`` to choose).  Keyword arguments forward to the
        service constructor (``scheduler=``, ``default_quota=``, ...).
        """
        from repro.service.service import CampaignService
        return CampaignService.from_testbed(self, sites=sites, **kwargs)
