"""Deterministic discrete-event simulation kernel.

A compact, dependency-free engine in the spirit of SimPy: generator-based
processes scheduled on a two-band calendar queue
(:class:`~repro.sim.calendar.CalendarQueue` — O(1) bucketed near-horizon
band with timeout coalescing, heap fallback for the far future) with a
simulated clock.  All higher layers (network, agents, instruments, data
fabric) are built on these primitives, which keeps every AISLE
experiment reproducible event-for-event from a single seed.

Public surface:

- :class:`~repro.sim.kernel.Simulator` — the event loop and clock.
- :class:`~repro.sim.calendar.CalendarQueue` — the scheduling structure.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf`.
- :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Interrupt`.
- :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.FilterStore`,
  :class:`~repro.sim.resources.PriorityStore`.
- :class:`~repro.sim.rng.RngRegistry` — named deterministic random streams.
"""

from repro.sim.calendar import CalendarQueue
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.ids import IdSequencer, ambient_ids, next_id, next_label
from repro.sim.kernel import Simulator, StopSimulation
from repro.sim.process import Interrupt, Process
from repro.sim.resources import FilterStore, PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Event",
    "FilterStore",
    "IdSequencer",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "RngRegistry",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "ambient_ids",
    "next_id",
    "next_label",
]
