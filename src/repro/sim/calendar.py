"""Bucketed calendar event queue — the kernel's scheduling structure.

The pre-PR kernel kept one binary heap of ``(time, seq, event)`` tuples:
every schedule and every pop paid ``O(log n)`` on a heap whose size is
the *entire* pending horizon, and thousands of identical instrument-poll
timeouts each tick were thousands of separate heap entries.  This module
replaces it with a two-band calendar queue:

- **near band** — a dict of *buckets* keyed by exact fire time, plus a
  small heap of the distinct bucket times.  Scheduling into an existing
  bucket is an O(1) list append (*timeout coalescing*: simultaneous
  timeouts share one bucket and one heap entry), and popping drains a
  whole bucket with O(1) list indexing, paying one heap pop per
  *distinct* time instead of one per event.
- **far band** — events at or beyond the rolling horizon go to a plain
  ``(time, seq, event)`` heap fallback.  When the near band drains, the
  horizon advances and the due prefix of the far heap migrates into
  buckets in one batch.  Far-future deadlines and watchdogs therefore
  never inflate the near band's heap.

The horizon span adapts deterministically: it *doubles on every
migration*.  Any migration is evidence the near window was too narrow to
have captured those events at push time, so the window widens until
migrations become rare and the far band is left holding only genuinely
far-future work (deadlines, watchdogs).  Growth is monotone and
self-limiting — once the span covers the workload's active timescale,
the near band stops draining and migrations (hence doublings) stop.  The
worst case (span overshoots and everything lands near) degenerates to
exactly the old one-heap behavior plus O(1) coalescing, never worse.

**Determinism contract.**  Pops are globally ordered by ``(time, seq)``
— byte-identical to the old binary heap (see
``tests/sim/test_calendar.py`` for the property test).  The argument:

- near bucket lists are appended in schedule order, and ``seq`` is
  assigned monotonically, so within a bucket list order *is* seq order;
- far-band migration drains the far heap in ``(time, seq)`` order and
  every migrated entry predates (in seq) any later direct append to the
  same bucket, so migration preserves bucket seq order;
- band assignment is an invariant, not a race: near times are always
  strictly below the horizon at push time, far times at or above it,
  and the horizon only moves forward — so the near band always holds
  the global minimum while it is non-empty.

Span adaptation affects *performance only*: no code path consults the
span when ordering events.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.events import Event

_INFINITY = float("inf")


class CalendarQueue:
    """Two-band bucketed event queue with deterministic (time, seq) order.

    Parameters
    ----------
    start:
        Initial clock value; the first horizon is ``start + span``.
    span:
        Initial width of the near-horizon window (adapts thereafter).
    """

    __slots__ = ("_buckets", "_times", "_far", "_horizon", "_span",
                 "_active", "_active_time", "_active_idx", "_size",
                 "coalesced", "far_deferred", "migrated", "buckets_opened")

    def __init__(self, start: float = 0.0, span: float = 1.0) -> None:
        if span <= 0:
            raise ValueError(f"span must be > 0, got {span}")
        # near band: exact fire time -> events appended in seq order
        self._buckets: dict[float, list] = {}
        self._times: list[float] = []          # heap of distinct near times
        self._far: list[tuple] = []            # heap of (time, seq, event)
        self._span = float(span)
        self._horizon = float(start) + float(span)
        # The bucket currently being drained.  It stays in ``_buckets``
        # (same-time schedules during the drain append to it live) and
        # its time is absent from ``_times`` until it is retired.
        self._active: Optional[list] = None
        self._active_time = 0.0
        self._active_idx = 0
        self._size = 0
        # Structure counters (exported via Simulator.queue_stats()).
        self.coalesced = 0       # pushes that shared an existing bucket
        self.far_deferred = 0    # pushes that landed in the far band
        self.migrated = 0        # far entries migrated into buckets
        self.buckets_opened = 0  # distinct near times materialized

    # -- scheduling ---------------------------------------------------------

    def push(self, at: float, seq: int, event: "Event") -> None:
        """Schedule ``event`` at time ``at`` with tie-break rank ``seq``.

        ``seq`` values must be pushed in increasing order (the kernel's
        monotone sequence counter guarantees this); near-band bucket
        lists rely on append order *being* seq order.
        """
        if at < self._horizon:
            bucket = self._buckets.get(at)
            if bucket is None:
                self._buckets[at] = [event]
                _heappush(self._times, at)
                self.buckets_opened += 1
            else:
                bucket.append(event)
                self.coalesced += 1
        else:
            _heappush(self._far, (at, seq, event))
            self.far_deferred += 1
        self._size += 1

    # -- popping ------------------------------------------------------------

    def pop_due(self, stop_at: float) -> Optional[Any]:
        """Pop the earliest event if its time is ``<= stop_at``.

        Returns ``None`` when the queue is empty or the next event lies
        beyond ``stop_at``.  After a successful pop, ``_active_time``
        holds the popped event's fire time (the kernel reads it to
        advance the clock once per bucket).
        """
        while True:
            bucket = self._active
            if bucket is not None:
                t = self._active_time
                if t > stop_at:
                    return None
                i = self._active_idx
                if i < len(bucket):
                    self._active_idx = i + 1
                    self._size -= 1
                    return bucket[i]
                # Drained (including anything appended mid-drain): retire.
                del self._buckets[t]
                self._active = None
                continue
            times = self._times
            if times:
                t = times[0]
                if t > stop_at:
                    # Do NOT activate: an earlier time may still be
                    # scheduled before the next run() call, and a
                    # pending active bucket would shadow it.
                    return None
                _heappop(times)
                self._active = self._buckets[t]
                self._active_time = t
                self._active_idx = 0
                continue
            far = self._far
            if far:
                if far[0][0] > stop_at:
                    return None
                self._advance_horizon()
                continue
            return None

    def next_time(self) -> float:
        """Time of the earliest pending event, or ``inf`` when empty."""
        while True:
            bucket = self._active
            if bucket is not None:
                if self._active_idx < len(bucket):
                    return self._active_time
                del self._buckets[self._active_time]
                self._active = None
                continue
            if self._times:
                return self._times[0]
            if self._far:
                return self._far[0][0]
            return _INFINITY

    # -- internals ----------------------------------------------------------

    def _advance_horizon(self) -> None:
        """Migrate the due prefix of the far band into near buckets.

        Only called when the near band is completely empty, so every
        migrated time is a fresh bucket (no interleaving with live near
        state).  The far heap pops in ``(time, seq)`` order, which keeps
        each bucket's append order equal to its seq order.
        """
        far = self._far
        t0 = far[0][0]
        horizon = t0 + self._span
        buckets = self._buckets
        times = self._times
        n = 0
        while far:
            at = far[0][0]
            # The ``== t0`` arm guarantees progress even if ``t0 + span``
            # rounds down to ``t0`` at large magnitudes.
            if at >= horizon and at != t0:
                break
            entry = _heappop(far)
            event = entry[2]
            bucket = buckets.get(at)
            if bucket is None:
                buckets[at] = [event]
                _heappush(times, at)
            else:
                bucket.append(event)
            n += 1
        self._horizon = horizon if horizon > t0 else t0
        self.migrated += n
        # Deterministic span adaptation (performance only; see module
        # doc): double on every migration.  A migration means the window
        # missed these events at push time; widening is monotone and
        # self-limiting, and depends only on the (seeded) event history.
        self._span *= 2.0

    # -- introspection ------------------------------------------------------

    def stats(self) -> dict:
        """Structure counters as plain data (for obs export)."""
        return {
            "pending": self._size,
            "coalesced": self.coalesced,
            "far_deferred": self.far_deferred,
            "migrated": self.migrated,
            "buckets_opened": self.buckets_opened,
        }

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CalendarQueue pending={self._size} "
                f"horizon={self._horizon:.6g} span={self._span:.6g}>")
