"""Shared-resource primitives: capacity-limited resources and object stores.

These back every queueing construct in AISLE: instrument duty cycles
(:class:`Resource`), agent mailboxes and message queues (:class:`Store`),
selective receipt (:class:`FilterStore`), and priority-ordered work queues
(:class:`PriorityStore`).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.sim)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def release(self) -> None:
        """Give the slot back (or withdraw a still-pending request)."""
        self.resource._release(self)

    # Context-manager sugar: ``with res.request() as req: yield req``.
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Resource:
    """A resource with ``capacity`` interchangeable slots (FIFO grant order).

    Examples
    --------
    >>> def worker(sim, res):
    ...     with res.request() as req:
    ...         yield req           # wait for a slot
    ...         yield sim.timeout(1.0)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self._users: list[Request] = []
        self._queue: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self)

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.pop(0)
            self._users.append(req)
            req.succeed(req)

    def _release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
        elif request in self._queue:
            self._queue.remove(request)
        else:
            return  # already released: releasing twice is a no-op
        self._trigger()


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    __slots__ = ("filter",)

    def __init__(self, store: "Store",
                 filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.sim)
        self.filter = filter


class Store:
    """An unordered-capacity FIFO store of arbitrary items.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is full); ``get()`` returns an event that
    fires with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: list[Any] = []
        self._putters: list[StorePut] = []
        self._getters: list[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        self._getters.append(ev)
        self._dispatch()
        return ev

    # -- internals ----------------------------------------------------------

    def _accept_puts(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put = self._putters.pop(0)
            self._store_item(put.item)
            put.succeed()

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self, getter: StoreGet) -> tuple[bool, Any]:
        if self.items:
            return True, self.items.pop(0)
        return False, None

    def _dispatch(self) -> None:
        # Alternate accepting puts and serving gets until neither makes
        # progress, so a bounded store hands slots over FIFO.
        progressed = True
        while progressed:
            progressed = False
            self._accept_puts()
            remaining: list[StoreGet] = []
            for getter in self._getters:
                ok, item = self._pop_item(getter)
                if ok:
                    getter.succeed(item)
                    progressed = True
                else:
                    remaining.append(getter)
            self._getters = remaining


class FilterStore(Store):
    """A store whose ``get`` can wait for an item matching a predicate."""

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        ev = StoreGet(self, filter)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _pop_item(self, getter: StoreGet) -> tuple[bool, Any]:
        if getter.filter is None:
            return super()._pop_item(getter)
        for i, item in enumerate(self.items):
            if getter.filter(item):
                return True, self.items.pop(i)
        return False, None


class PriorityStore(Store):
    """A store that always yields the smallest item first.

    Items must be mutually orderable; AISLE wraps payloads in
    ``(priority, seq, payload)`` tuples to guarantee a total order.
    """

    def __init__(self, sim: "Simulator", capacity: float = float("inf")) -> None:
        super().__init__(sim, capacity)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self._heap, item)
        self.items = self._heap  # keep len()/capacity checks consistent

    def _pop_item(self, getter: StoreGet) -> tuple[bool, Any]:
        if self._heap:
            return True, heapq.heappop(self._heap)
        return False, None
