"""Per-world identifier streams — the id half of the determinism contract.

Every AISLE object that needs an identity (measurements, HPC jobs, data
proxies, records, samples, tokens, messages, plans) used to pull from a
module-global ``itertools.count``.  That is a determinism bug class: two
same-seed federations built in one process *interleave* their draws from
the shared counter, so ids — and everything downstream of them (trace
exports, provenance graphs, revocation lists) — diverge between runs that
should be byte-identical.  ``detlint`` rule D001 now rejects the pattern
outright; this module is the sanctioned replacement.

An :class:`IdSequencer` owns any number of independent *named* integer
streams.  Each :class:`~repro.sim.kernel.Simulator` carries its own
sequencer (``sim.ids``), so ids are a pure function of the world that
allocates them: two same-seed worlds hand out identical ids no matter how
their lifetimes interleave inside one process.

Components that hold a ``sim`` handle allocate explicitly::

    job_id = f"job-{self.sim.ids.next('hpc.job')}"

Value objects constructed *without* a world handle (bare dataclasses in
tests, ``Message.reply``) fall back to the **ambient** sequencer: the
kernel binds ``sim.ids`` as ambient whenever a world is constructed or
stepped, so any id minted while a world is live comes from that world's
streams.  Only code running with no ``Simulator`` at all reaches the
process-local fallback — a convenience for unit tests, never exercised on
a simulation path (tests/integration/test_same_seed_ids.py proves it).
"""

from __future__ import annotations

from contextvars import ContextVar
from typing import Optional

__all__ = ["IdSequencer", "ambient_ids", "bind_ambient", "next_id",
           "next_label"]


class IdSequencer:
    """Named, independent, monotonically increasing integer streams.

    Streams spring into existence on first use and are independent of each
    other: allocating from ``"measurement"`` never perturbs ``"token"``.
    The class is deliberately tiny — a dict of high-water marks — so a
    sequencer can be snapshotted, compared, and embedded per world at
    negligible cost.

    Examples
    --------
    >>> ids = IdSequencer()
    >>> ids.next("sample"), ids.next("sample"), ids.next("token")
    (1, 2, 1)
    >>> ids.label("sample")
    'sample-3'
    >>> ids.label("measurement", "meas")
    'meas-1'
    """

    __slots__ = ("_streams",)

    def __init__(self) -> None:
        self._streams: dict[str, int] = {}

    def next(self, stream: str) -> int:
        """Allocate the next integer (1-based) from ``stream``."""
        n = self._streams.get(stream, 0) + 1
        self._streams[stream] = n
        return n

    def label(self, stream: str, prefix: Optional[str] = None) -> str:
        """Allocate and render ``"<prefix>-<n>"`` (prefix defaults to the
        stream name)."""
        return f"{prefix or stream}-{self.next(stream)}"

    def peek(self, stream: str) -> int:
        """Last value allocated from ``stream`` (0 if untouched)."""
        return self._streams.get(stream, 0)

    def snapshot(self) -> dict[str, int]:
        """Copy of all stream high-water marks (for audits/regressions)."""
        return dict(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IdSequencer {self._streams!r}>"


# The ambient binding: "which world's sequencer should id allocations that
# carry no explicit handle draw from?".  The kernel rebinds this on world
# construction and on every step, so interleaved same-seed worlds each see
# their own streams.  The fallback below exists ONLY for code running with
# no Simulator anywhere (bare dataclass construction in unit tests); it is
# process-local mutable state by design and carries the one sanctioned
# detlint suppression in the codebase.
_AMBIENT: ContextVar[Optional[IdSequencer]] = ContextVar(
    "repro.sim.ids.ambient", default=None)
_NO_WORLD_FALLBACK = IdSequencer()  # detlint: ignore[D001] — test-only fallback; every Simulator binds its own sequencer


def bind_ambient(ids: IdSequencer) -> None:
    """Make ``ids`` the ambient sequencer for this execution context."""
    if _AMBIENT.get() is not ids:
        _AMBIENT.set(ids)


def ambient_ids() -> IdSequencer:
    """The ambient sequencer (the last world touched), or the process
    fallback when no world exists."""
    ids = _AMBIENT.get()
    return _NO_WORLD_FALLBACK if ids is None else ids


def next_id(stream: str) -> int:
    """Allocate from the ambient sequencer's ``stream``."""
    return ambient_ids().next(stream)


def next_label(stream: str, prefix: Optional[str] = None) -> str:
    """Allocate and render a label from the ambient sequencer."""
    return ambient_ids().label(stream, prefix)
