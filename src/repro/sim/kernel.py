"""The discrete-event simulation loop.

The :class:`Simulator` owns the simulated clock and a binary heap of
scheduled events.  Ties at the same timestamp break deterministically on a
monotonically increasing sequence number, so two runs with the same seed
are identical event-for-event (a requirement stated in DESIGN.md for every
AISLE experiment).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.ids import _AMBIENT, IdSequencer, bind_ambient
from repro.sim.process import Process

_heappush = heapq.heappush
_heappop = heapq.heappop


class _CallbackEvent(Event):
    """Event scheduled *untriggered* by :meth:`Simulator.schedule_callback`.

    It resolves (ok/value set) only when the kernel pops it, so callbacks
    appended between creation and firing observe a consistent
    ``triggered == False`` until the moment it actually fires.
    """

    __slots__ = ("_deferred_value",)

    def __init__(self, sim: "Simulator", value: Any) -> None:
        super().__init__(sim)
        self._deferred_value = value

    def _resolve(self) -> None:
        self._ok = True
        self._value = self._deferred_value


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event.ok:
            raise cls(event.value)
        raise event.value


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


_INFINITY = float("inf")


class Simulator:
    """Discrete-event simulator with a floating-point clock.

    Parameters
    ----------
    start:
        Initial simulation time (default 0.0).  Units are abstract; AISLE
        layers interpret them as **seconds** throughout.

    Examples
    --------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(5.0)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now, p.value
    (5.0, 'done')
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Per-world id streams (see repro.sim.ids): ids allocated by this
        # world are a function of the world alone, so two same-seed worlds
        # in one process mint identical identifiers.  The sequencer also
        # becomes *ambient* while this world is live, covering value
        # objects constructed without an explicit handle.
        self.ids = IdSequencer()
        bind_ambient(self.ids)
        # Observability hooks (repro.obs): called as hook(time, event).
        # ``None`` (the default) keeps untraced runs on the fast path.
        self.step_hook: Optional[Callable[[float, Event], Any]] = None
        self.schedule_hook: Optional[Callable[[float, Event], Any]] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        at = self._now + delay
        _heappush(self._queue, (at, self._seq, event))
        self._seq += 1
        if self.schedule_hook is not None:
            self.schedule_hook(at, event)

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any], value: Any = None
    ) -> Event:
        """Run ``fn`` after ``delay`` time units; returns the trigger event.

        The event stays untriggered until it fires: anyone inspecting (or
        waiting on) it in the meantime sees a consistent pending state.
        """
        ev = _CallbackEvent(self, value)
        ev.callbacks.append(lambda _ev: fn())
        self._schedule(ev, delay)
        return ev

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else _INFINITY

    def step(self) -> None:
        """Process exactly one event from the queue."""
        # Inlined bind_ambient: the rebind is skipped when the ambient
        # world is already this one — the common case inside run(), where
        # it would otherwise cost a function call per event.
        ids = self.ids
        if _AMBIENT.get() is not ids:
            _AMBIENT.set(ids)
        try:
            self._now, _, event = _heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        if event._ok is None:
            # Only _CallbackEvent is ever scheduled untriggered: it
            # becomes triggered at the moment it fires, not at creation.
            event._resolve()
        if self.step_hook is not None:
            self.step_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            ``float`` — run until the clock reaches that time.
            :class:`Event` — run until that event is processed and return
            its value (raising its exception if it failed).
        """
        stop_at = _INFINITY
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: nothing to do.
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})")

        # Hot loop: hoist the queue and bound method to locals so each
        # iteration costs two lookups instead of five attribute chases.
        queue = self._queue
        step = self.step
        try:
            while queue and queue[0][0] <= stop_at:
                step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        if stop_at is not _INFINITY:
            # Advance the clock to the deadline even if the queue drained
            # earlier, so back-to-back run(until=...) calls compose.
            self._now = max(self._now, stop_at)
        if isinstance(until, Event) and not until.triggered:
            raise RuntimeError("simulation ended before the awaited event fired")
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6g} pending={len(self._queue)}>"
