"""The discrete-event simulation loop.

The :class:`Simulator` owns the simulated clock and a two-band
:class:`~repro.sim.calendar.CalendarQueue` of scheduled events:
near-horizon events live in O(1)-append time buckets (simultaneous
timeouts coalesce into one bucket), far-future events in a heap fallback
that migrates forward in batches.  Ties at the same timestamp break
deterministically on a monotonically increasing sequence number, so two
runs with the same seed are identical event-for-event (a requirement
stated in DESIGN.md for every AISLE experiment) — and byte-identical to
the retired binary-heap kernel, whose frozen copy
(:mod:`repro.perf.legacy_kernel`) the perf harness races this one
against.

:meth:`Simulator.run` is the hot loop of every experiment, so it drains
bucket batches inline instead of calling :meth:`step` per event: the
clock advances once per bucket, locals are hoisted, and the hook checks
are fused into the drain.  :meth:`step` remains the sanctioned way to
process exactly one event.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Callable, Generator, Optional

from repro.sim.calendar import CalendarQueue
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.ids import _AMBIENT, IdSequencer, bind_ambient
from repro.sim.process import Process


class _CallbackEvent(Event):
    """Event scheduled *untriggered* by :meth:`Simulator.schedule_callback`.

    It resolves (ok/value set) only when the kernel pops it, so callbacks
    appended between creation and firing observe a consistent
    ``triggered == False`` until the moment it actually fires.
    """

    __slots__ = ("_deferred_value",)

    def __init__(self, sim: "Simulator", value: Any) -> None:
        super().__init__(sim)
        self._deferred_value = value

    def _resolve(self) -> None:
        self._ok = True
        self._value = self._deferred_value


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""

    @classmethod
    def callback(cls, event: Event) -> None:
        if event.ok:
            raise cls(event.value)
        raise event.value


class EmptySchedule(Exception):
    """Raised by :meth:`Simulator.step` when no events remain."""


_INFINITY = float("inf")

# Hoisted allocator for the Simulator.timeout fast path: skips the
# type-call machinery (one C call instead of type.__call__ -> __init__).
_new_timeout = Timeout.__new__


class Simulator:
    """Discrete-event simulator with a floating-point clock.

    Parameters
    ----------
    start:
        Initial simulation time (default 0.0).  Units are abstract; AISLE
        layers interpret them as **seconds** throughout.

    Examples
    --------
    >>> sim = Simulator()
    >>> def proc(sim):
    ...     yield sim.timeout(5.0)
    ...     return "done"
    >>> p = sim.process(proc(sim))
    >>> sim.run()
    >>> sim.now, p.value
    (5.0, 'done')
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue = CalendarQueue(start=float(start))
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Per-world id streams (see repro.sim.ids): ids allocated by this
        # world are a function of the world alone, so two same-seed worlds
        # in one process mint identical identifiers.  The sequencer also
        # becomes *ambient* while this world is live, covering value
        # objects constructed without an explicit handle.
        self.ids = IdSequencer()
        bind_ambient(self.ids)
        # Observability hooks (repro.obs): called as hook(time, event).
        # ``None`` (the default) keeps untraced runs on the fast path.
        self.step_hook: Optional[Callable[[float, Event], Any]] = None
        self.schedule_hook: Optional[Callable[[float, Event], Any]] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now.

        This is the kernel's hottest allocation site (every instrument
        poll, sampling interval, and deadline is a timeout), so the
        whole chain — slot writes, ``(time, seq)`` assignment, and the
        near-band bucket insert — runs in this one frame.  The insert
        mirrors :meth:`CalendarQueue.push` exactly; that method stays
        the canonical implementation, and the equivalence tests in
        ``tests/sim/test_calendar.py`` hold the two paths together.
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        if delay.__class__ is not float:
            delay = float(delay)
        ev = _new_timeout(Timeout)
        ev.sim = self
        ev.callbacks = []
        ev._ok = True
        ev._value = value
        ev._defused = False
        ev.delay = delay
        at = self._now + delay
        queue = self._queue
        if at < queue._horizon:
            bucket = queue._buckets.get(at)
            if bucket is None:
                queue._buckets[at] = [ev]
                _heappush(queue._times, at)
                queue.buckets_opened += 1
            else:
                bucket.append(ev)
                queue.coalesced += 1
        else:
            _heappush(queue._far, (at, self._seq, ev))
            queue.far_deferred += 1
        queue._size += 1
        self._seq += 1
        if self.schedule_hook is not None:
            self.schedule_hook(at, ev)
        return ev

    def process(self, generator: Generator) -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that succeeds when all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        at = self._now + delay
        self._queue.push(at, self._seq, event)
        self._seq += 1
        if self.schedule_hook is not None:
            self.schedule_hook(at, event)

    def schedule_callback(
        self, delay: float, fn: Callable[[], Any], value: Any = None
    ) -> Event:
        """Run ``fn`` after ``delay`` time units; returns the trigger event.

        The event stays untriggered until it fires: anyone inspecting (or
        waiting on) it in the meantime sees a consistent pending state.
        """
        ev = _CallbackEvent(self, value)
        ev.callbacks.append(lambda _ev: fn())
        self._schedule(ev, delay)
        return ev

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.next_time()

    def queue_stats(self) -> dict:
        """Calendar-queue structure counters (coalescing, far band)."""
        return self._queue.stats()

    def step(self) -> None:
        """Process exactly one event from the queue."""
        # Inlined bind_ambient: the rebind is skipped when the ambient
        # world is already this one — the common case, where it would
        # otherwise cost a function call per event.
        ids = self.ids
        if _AMBIENT.get() is not ids:
            _AMBIENT.set(ids)
        queue = self._queue
        event = queue.pop_due(_INFINITY)
        if event is None:
            raise EmptySchedule()
        self._now = queue._active_time

        if event._ok is None:
            # Only _CallbackEvent is ever scheduled untriggered: it
            # becomes triggered at the moment it fires, not at creation.
            event._resolve()
        if self.step_hook is not None:
            self.step_hook(self._now, event)

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        Parameters
        ----------
        until:
            ``None`` — run until no events remain.
            ``float`` — run until the clock reaches that time.
            :class:`Event` — run until that event is processed and return
            its value (raising its exception if it failed).
        """
        stop_at = _INFINITY
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: nothing to do.
                    if until.ok:
                        return until.value
                    raise until.value
                until.callbacks.append(StopSimulation.callback)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until={stop_at} is in the past (now={self._now})")

        # Hot loop, fused: the outer loop fetches the next due bucket
        # (one clock write and one deadline check per *bucket*), the
        # inner loop drains it with plain list indexing (no step() call,
        # no heap op, no tuple unpack per event).  Everything the loop
        # touches more than once is hoisted to a local.
        queue = self._queue
        pop_due = queue.pop_due
        ids = self.ids
        ambient_get = _AMBIENT.get
        ambient_set = _AMBIENT.set
        try:
            while True:
                event = pop_due(stop_at)
                if event is None:
                    break
                now = self._now = queue._active_time
                while True:
                    if ambient_get() is not ids:
                        ambient_set(ids)
                    if event._ok is None:
                        event._resolve()
                    hook = self.step_hook
                    if hook is not None:
                        hook(now, event)
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    # Same-bucket fast path: more events at this exact
                    # time (including ones appended during the drain).
                    # The time guard covers re-entrant step() calls from
                    # callbacks, which may retire or swap the bucket.
                    bucket = queue._active
                    if bucket is None or queue._active_time != now:
                        break
                    i = queue._active_idx
                    if i >= len(bucket):
                        break
                    queue._active_idx = i + 1
                    queue._size -= 1
                    event = bucket[i]
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        if stop_at is not _INFINITY:
            # Advance the clock to the deadline even if the queue drained
            # earlier, so back-to-back run(until=...) calls compose.
            self._now = max(self._now, stop_at)
        if isinstance(until, Event) and not until.triggered:
            raise RuntimeError("simulation ended before the awaited event fired")
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now:.6g} pending={len(self._queue)}>"
