"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on by
``yield``-ing it.  Events move through three states:

``pending`` --(succeed/fail)--> ``triggered`` --(kernel pops it)--> ``processed``

Once triggered an event carries a *value* (or an exception) that is
delivered to every waiting process.  Composite events (:class:`AllOf`,
:class:`AnyOf`) let a process wait on several events at once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

_PENDING = object()


class Event:
    """A one-shot occurrence on the simulation timeline.

    Parameters
    ----------
    sim:
        Owning :class:`~repro.sim.kernel.Simulator`.

    Notes
    -----
    ``callbacks`` is a list of single-argument callables invoked (with the
    event itself) when the kernel processes the event.  After processing,
    ``callbacks`` is set to ``None``; appending to a processed event is a
    programming error and raises immediately rather than silently dropping
    the waiter.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        # A failed event whose exception was delivered to (or intercepted
        # by) someone is "defused"; undefused failures crash the run so
        # errors can never be silently lost.
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the kernel has delivered the event to its waiters."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or its exception)."""
        if self._value is _PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        The event is scheduled on the kernel queue ``delay`` time units
        from now (default: immediately, i.e. at the current simulation
        time but after currently running code yields control).
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception delivered to all waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event onto this one."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future.

    Timeouts are the single hottest allocation in every AISLE experiment
    (instrument polls, sampling intervals, deadlines), so ``__init__``
    writes the :class:`Event` slots directly instead of chaining through
    ``Event.__init__`` — one frame instead of two per timeout.  The slot
    set must stay in sync with :class:`Event`.
    """

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self.delay = float(delay)
        sim._schedule(self, delay)


class ConditionValue:
    """Ordered mapping of child event -> value for composite conditions."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._count = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same Simulator")
        if not self._events:
            self.succeed(ConditionValue())
            return
        for ev in self._events:
            if ev.processed:
                self._check(ev)
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)

    def _evaluate(self, done: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._count, len(self._events)):
            value = ConditionValue()
            value.events = [ev for ev in self._events if ev.processed and ev._ok]
            self.succeed(value)


class AllOf(_Condition):
    """Succeeds when *every* child event has succeeded.

    Fails fast with the first child failure.
    """

    __slots__ = ()

    def _evaluate(self, done: int, total: int) -> bool:
        return done == total


class AnyOf(_Condition):
    """Succeeds as soon as *any* child event succeeds."""

    __slots__ = ()

    def _evaluate(self, done: int, total: int) -> bool:
        return done > 0
