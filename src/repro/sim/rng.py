"""Named deterministic random streams.

Every stochastic component in AISLE (instrument noise, network jitter,
simulated-LLM sampling, landscape synthesis, ...) draws from its own named
stream derived from a single root seed.  Streams are independent of each
other and of creation *order*: the stream for a given name is a pure
function of ``(root_seed, name)``, so adding a new component never perturbs
the randomness of existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_words(name: str) -> list[int]:
    """Stable 128-bit digest of ``name`` as four uint32 words."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=16).digest()
    return [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]


class RngRegistry:
    """Factory of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        The root seed.  Two registries with the same seed hand out
        identical streams for identical names.

    Examples
    --------
    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("instrument.xrd.noise")
    >>> b = RngRegistry(42).stream("instrument.xrd.noise")
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (memoized) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed, *_name_to_words(name)])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name``, rewound to its start.

        Unlike :meth:`stream`, repeated calls return independent objects
        that each replay the same sequence — useful for comparing two
        policies against identical noise.
        """
        ss = np.random.SeedSequence([self.seed, *_name_to_words(name)])
        return np.random.default_rng(ss)

    def spawn(self, name: str) -> "RngRegistry":
        """Derive a child registry rooted at ``(seed, name)``.

        Children of different names are independent; a child's streams are
        independent of the parent's.
        """
        child_seed = int.from_bytes(
            hashlib.blake2b(
                f"{self.seed}/{name}".encode("utf-8"), digest_size=8
            ).digest(),
            "little",
        )
        return RngRegistry(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"
