"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each ``yield`` must produce
an :class:`~repro.sim.events.Event`; the process suspends until that event
triggers and resumes with the event's value (or the event's exception is
thrown into the generator).  A process is itself an event that succeeds
with the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, _PENDING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries an
    arbitrary payload (AISLE uses it for fault injection and preemption).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running simulation process (also usable as an event).

    Notes
    -----
    Do not instantiate directly in normal use; call
    :meth:`Simulator.process`.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off via an immediately-scheduled initialization
        # event so that creation order, not construction stack depth,
        # determines execution order.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        sim._schedule(init, 0.0)

    # -- public API ---------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from its current target (the target
        event may still fire for other waiters).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has already terminated")
        if self is self.sim.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        ev = Event(self.sim)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev._defused = True  # delivered into the generator, never "unhandled"
        ev.callbacks.append(self._resume_interrupt)
        self.sim._schedule(ev, 0.0)

    # -- resumption machinery -------------------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            # The process finished between scheduling and delivery of the
            # interrupt; drop it silently (matches SimPy semantics closely
            # enough for our fault-injection usage).
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._target = None
        self._step(event)

    def _resume(self, event: Event) -> None:
        """Deliver ``event`` and drive the generator to its next yield.

        This is the callback the kernel invokes once per process wakeup,
        so the body lives here directly (no ``_resume`` -> ``_step``
        double call) and the generator's ``send``/``throw`` are bound
        once per wakeup instead of re-read from ``self`` per iteration.
        """
        self._target = None
        sim = self.sim
        prev, sim._active_process = sim._active_process, self
        generator = self._generator
        send = generator.send
        throw = generator.throw
        try:
            while True:
                try:
                    if event._ok:
                        target = send(event._value)
                    else:
                        event._defused = True
                        target = throw(event._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self.fail(exc)
                    return

                if not isinstance(target, Event):
                    exc = TypeError(
                        f"process {self.name!r} yielded {target!r}, "
                        "which is not an Event")
                    try:
                        throw(exc)
                    except StopIteration as stop:
                        self.succeed(stop.value)
                        return
                    except BaseException as err:
                        self.fail(err)
                        return
                    continue

                if target.callbacks is not None:
                    # Target not yet processed: wait for it.
                    target.callbacks.append(self._resume)
                    self._target = target
                    return
                # Target already processed: loop and deliver synchronously.
                event = target
        finally:
            sim._active_process = prev

    # Historical name for the resumption body; kept so callers (and the
    # interrupt path above) that address ``_step`` keep working.
    _step = _resume

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
