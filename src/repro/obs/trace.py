"""Deterministic structured tracing over the simulated clock.

A :class:`Tracer` records :class:`TraceEvent`\\ s stamped with *simulation*
time and a monotonically increasing sequence number — never wall clock,
never ``id()`` — so two runs from the same seed export byte-identical
traces (the determinism contract in DESIGN.md extends to observability).

Spans nest: the orchestrator wraps each campaign, experiment, and
plan/verify/execute/evaluate phase in one, and the export replays a
campaign as a span tree.  The default tracer everywhere is the no-op
:data:`NULL_TRACER`, so untraced runs pay only a handful of attribute
checks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.export import TraceSpillWriter
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One structured record on a run's timeline.

    Attributes
    ----------
    seq:
        Monotonic sequence number (total order, breaks clock ties).
    t:
        Simulation time the event was emitted.
    kind:
        ``"span-start"``, ``"span-end"``, or ``"instant"``.
    name:
        What happened (``"campaign"``, ``"plan"``, ``"kernel.step"``, ...).
    span:
        Id of the span this event belongs to (``None`` outside any span).
    parent:
        Id of the enclosing span, for tree reconstruction.
    attrs:
        Free-form JSON-serializable details.
    """

    seq: int
    t: float
    kind: str
    name: str
    span: Optional[int] = None
    parent: Optional[int] = None
    attrs: dict[str, Any] = field(default_factory=dict)


class _Span:
    """Context manager recording span-start/span-end around a block.

    Works inside generator-based processes: simulation time advancing
    across ``yield from`` within the block lands in the span's duration.
    """

    __slots__ = ("_tracer", "span_id", "name", "_t0")

    def __init__(self, tracer: "Tracer", span_id: int, name: str) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._t0 = self._tracer.sim.now
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        attrs: dict[str, Any] = {"duration": tracer.sim.now - self._t0}
        if exc_type is not None:
            attrs["error"] = exc_type.__name__
        tracer._end_span(self, attrs)
        return False


class Tracer:
    """Collects a deterministic event stream for one simulated world.

    Parameters
    ----------
    sim:
        The kernel whose clock stamps every event.
    run_id:
        Caller-chosen identifier embedded in exports (pass something
        seed-derived; wall-clock-derived ids would break determinism).
    max_events:
        ``None`` (default) keeps every event in memory — the historical
        behaviour.  A positive value bounds ``events`` to a ring holding
        the most recent ``max_events``: older events either stream to
        ``spill`` or are dropped (counted, never silent).
    spill:
        Incremental sink for emitted events — a
        :class:`~repro.obs.export.TraceSpillWriter`, a path string (a
        writer is created lazily), or any object with a
        ``write(event)`` method.  With a spill attached the full trace
        survives on disk even when the in-memory ring truncates.
    metrics:
        Optional registry; ring evictions increment
        ``obs.dropped_events`` (no spill) or ``obs.spilled_events``
        (spill attached), so truncation is visible in every snapshot.
    """

    def __init__(self, sim: "Simulator", run_id: str = "run", *,
                 max_events: Optional[int] = None,
                 spill: "TraceSpillWriter | str | None" = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.sim = sim
        self.run_id = run_id
        if isinstance(spill, str):
            from repro.obs.export import TraceSpillWriter
            spill = TraceSpillWriter(spill)
        self.spill = spill
        self.max_events = max_events
        self.events: "list[TraceEvent] | deque[TraceEvent]" = (
            [] if max_events is None else deque())
        self.dropped = 0
        self.spilled = 0
        self.metrics = metrics
        self._seq = 0
        self._next_span = 1
        self._stack: list[int] = []

    @property
    def enabled(self) -> bool:
        return True

    @property
    def current_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- emission ----------------------------------------------------------

    def _emit(self, kind: str, name: str, span: Optional[int],
              parent: Optional[int], attrs: dict[str, Any]) -> TraceEvent:
        ev = TraceEvent(seq=self._seq, t=self.sim.now, kind=kind, name=name,
                        span=span, parent=parent, attrs=attrs)
        self._seq += 1
        if self.spill is not None:
            self.spill.write(ev)
            self.spilled += 1
            if self.metrics is not None:
                self.metrics.counter("obs.spilled_events").inc()
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.events.popleft()
            if self.spill is None:
                # The event is gone for good — count it, loudly.
                self.dropped += 1
                if self.metrics is not None:
                    self.metrics.counter("obs.dropped_events").inc()
        self.events.append(ev)
        return ev

    def instant(self, name: str, /, **attrs: Any) -> TraceEvent:
        """Record a point event inside the current span (if any)."""
        parent = self._stack[-2] if len(self._stack) > 1 else None
        return self._emit("instant", name, self.current_span, parent, attrs)

    def span(self, name: str, /, **attrs: Any) -> _Span:
        """Open a nested span: ``with tracer.span("plan"): ...``."""
        span_id = self._next_span
        self._next_span += 1
        self._emit("span-start", name, span_id, self.current_span, attrs)
        self._stack.append(span_id)
        return _Span(self, span_id, name)

    def _end_span(self, span: _Span, attrs: dict[str, Any]) -> None:
        # Close any dangling children first (a break/raise mid-span).
        while self._stack and self._stack[-1] != span.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self._emit("span-end", span.name, span.span_id, self.current_span,
                   attrs)

    # -- kernel attachment -------------------------------------------------

    def attach_kernel(self, sim: Optional["Simulator"] = None, *,
                      schedule: bool = False) -> None:
        """Trace every kernel step (and optionally every schedule).

        Heavyweight on purpose — a microscope for short runs, not a
        default.  Detach with :meth:`detach_kernel`.
        """
        sim = sim or self.sim
        sim.step_hook = lambda t, ev: self.instant(
            "kernel.step", event=type(ev).__name__)
        if schedule:
            sim.schedule_hook = lambda t, ev: self.instant(
                "kernel.schedule", at=t, event=type(ev).__name__)

    def detach_kernel(self, sim: Optional["Simulator"] = None) -> None:
        sim = sim or self.sim
        sim.step_hook = None
        sim.schedule_hook = None

    # -- spill management --------------------------------------------------

    def flush(self) -> None:
        """Flush (and leave open) the spill sink, if any."""
        if self.spill is not None and hasattr(self.spill, "flush"):
            self.spill.flush()

    def close_spill(self) -> None:
        """Flush and close the spill sink; the tracer stays usable in
        memory (a later emit with a closed writer reopens nothing —
        pass a fresh spill instead)."""
        if self.spill is not None:
            if hasattr(self.spill, "close"):
                self.spill.close()
            self.spill = None

    # -- replay helpers ----------------------------------------------------

    def span_tree(self) -> list[dict[str, Any]]:
        """Reconstruct the nested span structure from the event stream.

        Returns the forest of root spans; each node carries ``name``,
        ``start``, ``end``, ``duration``, ``attrs``, and ``children``.
        """
        nodes: dict[int, dict[str, Any]] = {}
        roots: list[dict[str, Any]] = []
        for ev in self.events:
            if ev.kind == "span-start":
                node = {"name": ev.name, "span": ev.span, "start": ev.t,
                        "end": None, "duration": None, "attrs": dict(ev.attrs),
                        "children": []}
                nodes[ev.span] = node
                parent = nodes.get(ev.parent)
                (parent["children"] if parent else roots).append(node)
            elif ev.kind == "span-end" and ev.span in nodes:
                node = nodes[ev.span]
                node["end"] = ev.t
                node["duration"] = ev.attrs.get("duration", ev.t - node["start"])
                node["attrs"].update(
                    {k: v for k, v in ev.attrs.items() if k != "duration"})
        return roots


class _NullSpan:
    """Reusable no-op span so untraced code pays one attribute lookup."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer with the :class:`Tracer` interface."""

    __slots__ = ()

    events: list[TraceEvent] = []
    dropped: int = 0
    spilled: int = 0

    @property
    def enabled(self) -> bool:
        return False

    def flush(self) -> None:
        return None

    def close_spill(self) -> None:
        return None

    @property
    def current_span(self) -> Optional[int]:
        return None

    def instant(self, name: str, /, **attrs: Any) -> None:
        return None

    def span(self, name: str, /, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def attach_kernel(self, sim: Optional["Simulator"] = None, *,
                      schedule: bool = False) -> None:
        return None

    def detach_kernel(self, sim: Optional["Simulator"] = None) -> None:
        return None

    def span_tree(self) -> list[dict[str, Any]]:
        return []


#: Shared default tracer: observability off, overhead ~zero.
NULL_TRACER = NullTracer()
