"""Unified observability: deterministic tracing and metrics (§3.3, M8/M11).

The paper's milestones are quantitative — M8's 3x orchestration speedup,
M9's >30% experiment reduction, M11's sub-second zero-trust latency — so
the reproduction needs a way to see *inside* a run without perturbing it.
This package provides that instrumentation layer:

- :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer` emitting
  structured, sim-timestamped :class:`~repro.obs.trace.TraceEvent`\\ s
  with span helpers for the orchestrator's plan/verify/execute/evaluate
  phases.  Zero wall-clock reads: two seeded runs export byte-identical
  traces.
- :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges, and streaming histograms (p50/p95/p99 without
  storing samples) that absorbs the per-component ``stats`` dicts.
- :mod:`repro.obs.export` — JSON-lines trace export and per-site metrics
  snapshots used by the benchmarks.

Untraced runs pay ~nothing: the kernel hooks default to ``None`` and the
orchestrator's default tracer is the no-op :data:`NULL_TRACER`.
"""

from repro.obs.export import (TraceSpillWriter, load_jsonl, metrics_snapshot,
                              to_jsonl, write_jsonl)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               StatsDict)
from repro.obs.rollup import WindowedCounter
from repro.obs.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "StatsDict",
    "TraceEvent",
    "TraceSpillWriter",
    "Tracer",
    "WindowedCounter",
    "load_jsonl",
    "metrics_snapshot",
    "to_jsonl",
    "write_jsonl",
]
