"""Trace and metrics export in stable, diff-able formats.

Traces export as JSON-lines (one :class:`~repro.obs.trace.TraceEvent` per
line) with sorted keys and fixed separators, so "same seed, same bytes"
holds file-for-file.  Metrics export as a plain JSON snapshot, optionally
filtered to one site — the form the benchmarks print.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.obs.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

_JSON_KW = {"sort_keys": True, "separators": (",", ":"),
            "ensure_ascii": True}


def _event_obj(ev: TraceEvent) -> dict[str, Any]:
    return {"seq": ev.seq, "t": ev.t, "kind": ev.kind, "name": ev.name,
            "span": ev.span, "parent": ev.parent, "attrs": ev.attrs}


def to_jsonl(events: "Iterable[TraceEvent] | Tracer") -> str:
    """Serialize a trace (or a tracer's events) to JSON-lines text."""
    events = getattr(events, "events", events)
    lines = [json.dumps(_event_obj(ev), **_JSON_KW) for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: "Iterable[TraceEvent] | Tracer", path: str) -> int:
    """Write a JSON-lines trace to ``path``; returns the event count."""
    text = to_jsonl(events)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    return text.count("\n")


def load_jsonl(path: str) -> list[TraceEvent]:
    """Read a JSON-lines trace back into :class:`TraceEvent` objects."""
    out: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            out.append(TraceEvent(seq=obj["seq"], t=obj["t"],
                                  kind=obj["kind"], name=obj["name"],
                                  span=obj.get("span"),
                                  parent=obj.get("parent"),
                                  attrs=obj.get("attrs", {})))
    return out


def metrics_snapshot(registry: "MetricsRegistry",
                     site: Optional[str] = None, *,
                     as_json: bool = False) -> "dict[str, Any] | str":
    """Per-site (or global) metrics snapshot, optionally as JSON text."""
    snap = registry.snapshot(site=site)
    if as_json:
        return json.dumps(snap, **_JSON_KW)
    return snap
