"""Trace and metrics export in stable, diff-able formats.

Traces export as JSON-lines (one :class:`~repro.obs.trace.TraceEvent` per
line) with sorted keys and fixed separators, so "same seed, same bytes"
holds file-for-file.  Metrics export as a plain JSON snapshot, optionally
filtered to one site — the form the benchmarks print.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.obs.trace import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

_JSON_KW = {"sort_keys": True, "separators": (",", ":"),
            "ensure_ascii": True}


def _event_obj(ev: TraceEvent) -> dict[str, Any]:
    return {"seq": ev.seq, "t": ev.t, "kind": ev.kind, "name": ev.name,
            "span": ev.span, "parent": ev.parent, "attrs": ev.attrs}


def to_jsonl(events: "Iterable[TraceEvent] | Tracer") -> str:
    """Serialize a trace (or a tracer's events) to JSON-lines text."""
    events = getattr(events, "events", events)
    lines = [json.dumps(_event_obj(ev), **_JSON_KW) for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: "Iterable[TraceEvent] | Tracer", path: str) -> int:
    """Write a JSON-lines trace to ``path``; returns the event count."""
    text = to_jsonl(events)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    return text.count("\n")


def load_jsonl(path: str) -> list[TraceEvent]:
    """Read a JSON-lines trace back into :class:`TraceEvent` objects."""
    out: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            out.append(TraceEvent(seq=obj["seq"], t=obj["t"],
                                  kind=obj["kind"], name=obj["name"],
                                  span=obj.get("span"),
                                  parent=obj.get("parent"),
                                  attrs=obj.get("attrs", {})))
    return out


class TraceSpillWriter:
    """Incremental JSONL spill: one event per line, written as emitted.

    This is how a bounded :class:`~repro.obs.trace.Tracer` keeps a
    *complete* record without unbounded memory — the ring holds the hot
    tail for inspection while every event streams to disk the moment it
    is emitted.  The file is opened lazily (a tracer configured with a
    spill path but never used creates nothing) and the output format is
    exactly :func:`to_jsonl`'s, so :func:`load_jsonl` reads it back and
    "same seed, same bytes" holds for spilled traces too.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events_written = 0
        self._fh = None

    def write(self, event: TraceEvent) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8", newline="\n")
        self._fh.write(json.dumps(_event_obj(event), **_JSON_KW))
        self._fh.write("\n")
        self.events_written += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceSpillWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def metrics_snapshot(registry: "MetricsRegistry",
                     site: Optional[str] = None, *,
                     as_json: bool = False) -> "dict[str, Any] | str":
    """Per-site (or global) metrics snapshot, optionally as JSON text."""
    snap = registry.snapshot(site=site)
    if as_json:
        return json.dumps(snap, **_JSON_KW)
    return snap
