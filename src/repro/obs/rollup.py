"""Streaming rollups: bounded time-windowed rates over the sim clock.

A raw counter answers "how many, ever"; campaign governance needs "how
many, *lately*" — ingest rates per facility, decision throughput over
the last simulated hour — without keeping a timestamp per event.  A
:class:`WindowedCounter` holds a fixed ring of coarse time windows plus
one rolled-up total for everything that aged out, so memory is
``O(n_windows)`` no matter how long the campaign runs.

Windows are aligned to the *simulated* clock (``window index =
floor(t / window_s)``), never wall clock, so the rollup is part of the
determinism contract: same seed, same windows, same rates.  Rollups are
mergeable (:meth:`WindowedCounter.merge_from`) the same way histograms
are, so per-shard rollups from :mod:`repro.scale` workers combine into
one global view.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = ["WindowedCounter"]


class WindowedCounter:
    """A counter bucketed into a bounded ring of sim-time windows.

    Parameters
    ----------
    window_s:
        Width of one window in simulated seconds.
    n_windows:
        How many recent windows the ring retains.  Older windows fold
        into :attr:`rolled` (their total survives; their time structure
        does not) — the memory-bound guarantee.
    """

    __slots__ = ("window_s", "n_windows", "rolled", "_ring")

    def __init__(self, window_s: float = 60.0, n_windows: int = 60) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if n_windows < 1:
            raise ValueError(f"n_windows must be >= 1, got {n_windows}")
        self.window_s = float(window_s)
        self.n_windows = n_windows
        #: Total counted in windows that aged out of the ring.
        self.rolled = 0.0
        # (window_index, amount) pairs, oldest first, strictly increasing
        # window indices; at most n_windows entries.
        self._ring: deque[list[float]] = deque()

    # -- recording -----------------------------------------------------------

    def _window_index(self, t: float) -> int:
        if t < 0:
            raise ValueError(f"sim time must be >= 0, got {t}")
        return int(t // self.window_s)

    def inc(self, t: float, amount: float = 1.0) -> None:
        """Count ``amount`` at sim time ``t`` (non-decreasing per caller)."""
        idx = self._window_index(t)
        if self._ring and idx < self._ring[-1][0]:
            # Late event (e.g. merged shard skew): fold it into the
            # oldest retained window rather than corrupting ring order.
            target = self._ring[0]
            if idx >= target[0]:
                for win in self._ring:
                    if win[0] == idx:
                        win[1] += amount
                        return
                    if win[0] > idx:
                        break
                target[1] += amount
            else:
                self.rolled += amount
            return
        if self._ring and idx == self._ring[-1][0]:
            self._ring[-1][1] += amount
            return
        self._ring.append([idx, amount])
        while len(self._ring) > self.n_windows:
            _, aged = self._ring.popleft()
            self.rolled += aged

    # -- reading -------------------------------------------------------------

    @property
    def total(self) -> float:
        """Everything ever counted (ring plus rolled-up history)."""
        return self.rolled + sum(amount for _, amount in self._ring)

    def recent(self) -> float:
        """Total still resolved into windows (the ring's contents)."""
        return sum(amount for _, amount in self._ring)

    def rate(self) -> float:
        """Mean per-second rate over the retained window span.

        Spans from the oldest retained window's start to the newest
        window's end, so a burst followed by silence decays as empty
        windows (implicitly) enter the span.
        """
        if not self._ring:
            return 0.0
        span_windows = self._ring[-1][0] - self._ring[0][0] + 1
        return self.recent() / (span_windows * self.window_s)

    def summary(self) -> dict[str, float]:
        return {"total": self.total, "recent": self.recent(),
                "rate": self.rate(), "window_s": self.window_s,
                "windows_retained": float(len(self._ring))}

    # -- merging -------------------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Plain-data dump for cross-process merging (picklable)."""
        return {"window_s": self.window_s, "n_windows": self.n_windows,
                "rolled": self.rolled,
                "ring": [[int(idx), amount] for idx, amount in self._ring]}

    def merge_state(self, state: dict[str, Any]) -> "WindowedCounter":
        if state["window_s"] != self.window_s:
            raise ValueError(
                f"cannot merge rollups with different windows: "
                f"{state['window_s']} vs {self.window_s}")
        self.rolled += state["rolled"]
        # Replay the other ring through inc(); late windows fold per the
        # rules above, so merging is deterministic regardless of skew.
        for idx, amount in state["ring"]:
            self.inc(idx * self.window_s, amount)
        return self

    def merge_from(self, other: "WindowedCounter") -> "WindowedCounter":
        """Absorb another shard's rollup (windows align by index)."""
        return self.merge_state(other.state())
