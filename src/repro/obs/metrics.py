"""Counters, gauges, and streaming histograms for every AISLE layer.

A single :class:`MetricsRegistry` replaces the ad-hoc per-component
``stats`` dicts that used to live in the message bus, the WAN transport,
the fault-tolerance stack, and the HAL.  Components keep their public
``.stats`` mapping API via :class:`StatsDict`, a dict-compatible view
whose values live in registry counters — so one registry sees the whole
federation and the benchmarks can snapshot it per site.

Histograms are *streaming*: fixed geometric buckets give p50/p95/p99
estimates (bounded relative error) without storing samples, so a
million-transfer campaign costs O(buckets), not O(samples).
"""

from __future__ import annotations

import math
from collections.abc import MutableMapping
from typing import Any, Iterator, Optional

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically-increasing (by convention) numeric metric."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        """Shard-merge: tallies add."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {render_name(self.name, self.labels)}={self.value}>"


class Gauge:
    """A point-in-time numeric metric (queue depth, backlog, ...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def merge_from(self, other: "Gauge") -> None:
        """Shard-merge: gauges *sum* — per-shard queue depths, backlogs,
        and ring sizes aggregate into the federation-wide quantity."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {render_name(self.name, self.labels)}={self.value}>"


class Histogram:
    """Streaming histogram with geometric buckets.

    Bucket ``i >= 1`` covers ``(lo * growth**(i-1), lo * growth**i]``;
    bucket 0 covers ``[0, lo]``.  Quantiles interpolate inside the
    landing bucket and clamp to the observed min/max, so the estimate's
    relative error is bounded by ``growth - 1`` (default ~15%, plenty for
    the order-of-magnitude latency claims in E1/E4).

    Parameters
    ----------
    lo:
        Upper edge of the first bucket; observations at or below land
        there.  Default 1 microsecond — below any simulated latency.
    growth:
        Geometric ratio between consecutive bucket edges.
    """

    __slots__ = ("name", "labels", "lo", "growth", "_log_growth", "_counts",
                 "count", "total", "_min", "_max")

    def __init__(self, name: str, labels: LabelKey = (), *,
                 lo: float = 1e-6, growth: float = 1.15) -> None:
        if lo <= 0 or growth <= 1:
            raise ValueError("need lo > 0 and growth > 1")
        self.name = name
        self.labels = labels
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, x: float) -> None:
        x = float(x)
        if x <= self.lo:
            idx = 0
        else:
            idx = 1 + int(math.log(x / self.lo) / self._log_growth)
        self._counts[idx] = self._counts.get(idx, 0) + 1
        self.count += 1
        self.total += x
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if not self.count:
            return 0.0
        rank = q * self.count
        cum = 0
        for idx in sorted(self._counts):
            n = self._counts[idx]
            if cum + n >= rank:
                lower = 0.0 if idx == 0 else self.lo * self.growth ** (idx - 1)
                upper = self.lo * self.growth ** idx
                frac = (rank - cum) / n
                est = lower + (upper - lower) * frac
                return min(max(est, self._min), self._max)
            cum += n
        return self._max

    def merge_from(self, other: "Histogram") -> None:
        """Shard-merge: bucket-wise addition (a mergeable sketch).

        Geometric buckets make the sketch closed under merge — two
        shards' histograms with the same ``(lo, growth)`` combine
        exactly, with the same bounded relative error as one histogram
        observing both streams.
        """
        if (self.lo, self.growth) != (other.lo, other.growth):
            raise ValueError(
                f"cannot merge histograms with different bucket geometry: "
                f"(lo={self.lo}, growth={self.growth}) vs "
                f"(lo={other.lo}, growth={other.growth})")
        for idx, n in other._counts.items():
            self._counts[idx] = self._counts.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def bucket_state(self) -> dict[str, Any]:
        """Plain-data sketch state (picklable; see ``Registry.state``)."""
        return {"lo": self.lo, "growth": self.growth,
                "counts": {int(i): int(self._counts[i])
                           for i in sorted(self._counts)},
                "count": self.count, "total": self.total,
                "min": self._min, "max": self._max}

    def merge_bucket_state(self, state: dict[str, Any]) -> None:
        """Merge a :meth:`bucket_state` dump (cross-process shard path)."""
        if (self.lo, self.growth) != (state["lo"], state["growth"]):
            raise ValueError(
                "cannot merge histogram state with different geometry")
        for idx, n in state["counts"].items():
            idx = int(idx)
            self._counts[idx] = self._counts.get(idx, 0) + int(n)
        self.count += state["count"]
        self.total += state["total"]
        self._min = min(self._min, state["min"])
        self._max = max(self._max, state["max"])

    def percentiles(self) -> dict[str, float]:
        """The p50/p95/p99 trio the milestone claims are stated in."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def summary(self) -> dict[str, float]:
        out = {"count": self.count, "mean": self.mean,
               "min": self._min if self.count else 0.0,
               "max": self._max if self.count else 0.0}
        out.update(self.percentiles())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {render_name(self.name, self.labels)} "
                f"n={self.count}>")


def render_name(name: str, labels: LabelKey) -> str:
    """Prometheus-ish rendering: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class StatsDict(MutableMapping):
    """A component's ``stats`` mapping, backed by registry counters.

    Behaves exactly like the plain dicts it replaces — ``stats["x"] += 1``,
    ``dict(stats)``, equality against dicts — while every value lives in a
    shared :class:`MetricsRegistry`, visible to snapshots and benchmarks.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: dict[str, Counter]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> float:
        return self._counters[key].value

    def __setitem__(self, key: str, value: float) -> None:
        self._counters[key].value = value

    def __delitem__(self, key: str) -> None:
        raise TypeError("stats keys are fixed at construction")

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (dict, StatsDict)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatsDict({dict(self)!r})"


class MetricsRegistry:
    """Get-or-create registry of every metric in one simulated world.

    Metrics are keyed by ``(name, sorted labels)``; asking twice returns
    the same object, so components wired to a shared registry aggregate
    naturally.  Components built without one create a private registry —
    their ``.stats`` API is unchanged either way.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- factories ---------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, *, lo: float = 1e-6,
                  growth: float = 1.15, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, key[1], lo=lo,
                                                  growth=growth)
        return h

    def stats(self, prefix: str, initial: dict[str, float],
              **labels: Any) -> StatsDict:
        """A :class:`StatsDict` over counters ``prefix.<key>``.

        ``initial`` gives the key set and starting values (fresh counters
        only — re-binding to existing counters keeps their tallies).
        """
        counters = {}
        for key, value in initial.items():
            full = f"{prefix}.{key}"
            lk = (full, _label_key(labels))
            fresh = lk not in self._counters
            c = self.counter(full, **labels)
            if fresh:
                c.value = value
            counters[key] = c
        return StatsDict(counters)

    # -- introspection -----------------------------------------------------

    def _selected(self, metrics: dict, site: Optional[str]):
        for (name, labels), metric in sorted(metrics.items()):
            if site is not None and ("site", site) not in labels:
                continue
            yield render_name(name, labels), metric

    def snapshot(self, site: Optional[str] = None) -> dict[str, Any]:
        """Plain-data dump of every metric (optionally one site's).

        Deterministically ordered, JSON-serializable; the shape the
        benchmarks and :func:`repro.obs.export.metrics_snapshot` consume.
        """
        return {
            "counters": {n: c.value
                         for n, c in self._selected(self._counters, site)},
            "gauges": {n: g.value
                       for n, g in self._selected(self._gauges, site)},
            "histograms": {n: h.summary()
                           for n, h in self._selected(self._histograms, site)},
        }

    # -- shard merging -----------------------------------------------------

    def state(self) -> dict[str, Any]:
        """Lossless plain-data dump: picklable and mergeable.

        Unlike :meth:`snapshot` (which summarizes histograms), ``state``
        carries full bucket sketches, so a worker process can ship its
        per-shard registry back and :meth:`merge_state` reassembles the
        global view exactly — the one reporting path
        :mod:`repro.scale` workers and :mod:`repro.service` tenants
        share.
        """
        return {
            "counters": [[name, [list(kv) for kv in labels], c.value]
                         for (name, labels), c in
                         sorted(self._counters.items())],
            "gauges": [[name, [list(kv) for kv in labels], g.value]
                       for (name, labels), g in sorted(self._gauges.items())],
            "histograms": [[name, [list(kv) for kv in labels],
                            h.bucket_state()]
                           for (name, labels), h in
                           sorted(self._histograms.items())],
        }

    def merge_state(self, state: dict[str, Any]) -> "MetricsRegistry":
        """Merge a :meth:`state` dump into this registry (in place)."""
        for name, labels, value in state.get("counters", ()):
            self.counter(name, **dict(labels)).inc(value)
        for name, labels, value in state.get("gauges", ()):
            self.gauge(name, **dict(labels)).inc(value)
        for name, labels, bucket_state in state.get("histograms", ()):
            h = self.histogram(name, lo=bucket_state["lo"],
                               growth=bucket_state["growth"], **dict(labels))
            h.merge_bucket_state(bucket_state)
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Merge another (per-shard) registry into this one, in place.

        Counters and gauges add; histograms merge bucket-wise.  Metric
        identity is ``(name, labels)``, so per-site labelled metrics
        land side by side while unlabelled ones aggregate.
        """
        return self.merge_state(other.state())
