"""CLI for the scale-out runner: ``python -m repro.scale``.

Runs a canonical multi-seed world sweep and prints (optionally writes)
the per-seed decision hashes.  The JSON manifest deliberately contains
*only* determinism-relevant fields — world kind, config, seeds, hashes —
so two manifests produced at different worker counts diff clean iff the
runs were equivalent.  That is exactly what the CI
``parallel-equivalence`` job does::

    REPRO_WORKERS=1 python -m repro.scale --seeds 0,1,2,3 --json h1.json
    REPRO_WORKERS=4 python -m repro.scale --seeds 0,1,2,3 --json h4.json
    diff h1.json h4.json

Time-travel replay rides the same manifest idea: ``--record DIR`` runs
the sweep while archiving trace/provenance shards plus decision hashes
(:mod:`repro.data.replay`), and ``--replay DIR`` re-drives the archived
worlds and fails loudly unless every hash matches byte-for-byte::

    python -m repro.scale --world mesh --seeds 0,1 --record campaign/
    python -m repro.scale --replay campaign/
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scale.runner import WorldRunner, WorldSpec
from repro.scale.worlds import WORLD_KINDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scale",
        description="Run a multi-seed world sweep and emit decision hashes.")
    parser.add_argument("--world", default="bo", choices=sorted(WORLD_KINDS),
                        help="canonical world entrypoint (default: bo)")
    parser.add_argument("--seeds", default="0,1,2,3",
                        help="comma-separated seeds (default: 0,1,2,3)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-world experiment budget override")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS, or "
                             "min(8, cpu_count) when unset; 1 = serial, "
                             "0 = one per CPU)")
    parser.add_argument("--verify", action="store_true",
                        help="replay serially and assert hash equality")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the hash manifest here")
    parser.add_argument("--record", default=None, metavar="DIR",
                        help="archive trace/provenance shards and decision "
                             "hashes to DIR for later --replay")
    parser.add_argument("--replay", default=None, metavar="DIR",
                        help="re-drive the campaign archived at DIR and "
                             "verify decision hashes (exit 1 on mismatch)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        if args.record is not None:
            parser.error("--record and --replay are mutually exclusive")
        return _replay(args.replay, workers=args.workers)

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated ints, "
                     f"got {args.seeds!r}")
    if not seeds:
        parser.error("need at least one seed")
    config = {} if args.budget is None else {"budget": args.budget}

    if args.record is not None:
        from repro.data.replay import record_campaign
        manifest = record_campaign(args.world, seeds, config, args.record,
                                   workers=args.workers)
        print(f"world={args.world} recorded -> {args.record}")
        for seed in seeds:
            print(f"  seed {seed:>4}  {manifest['hashes'][str(seed)]}")
        print(f"combined: {manifest['combined']}")
        return 0

    runner = WorldRunner(args.workers, verify=args.verify)
    specs = [WorldSpec(seed=s, entrypoint=WORLD_KINDS[args.world],
                       config=config) for s in seeds]
    batch = runner.run(specs)

    print(f"world={args.world} workers={batch.workers} "
          f"verify={args.verify}")
    for result in batch:
        print(f"  seed {result.seed:>4}  {result.decision_hash}")
    print(f"combined: {batch.combined_hash}")

    if args.json:
        manifest = {
            "world": args.world,
            "config": config,
            "seeds": seeds,
            "hashes": {str(r.seed): r.decision_hash for r in batch},
            "combined": batch.combined_hash,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


def _replay(root: str, workers=None) -> int:
    from repro.data.replay import CampaignArchive, replay_campaign
    report = replay_campaign(root, workers=workers)
    timeline = CampaignArchive(root).timeline()
    print(f"world={report['world']} replayed from {root} "
          f"({len(timeline)} archived trace events)")
    mismatched = {m["seed"] for m in report["mismatches"]}
    for seed in report["seeds"]:
        status = "MISMATCH" if seed in mismatched else "ok"
        print(f"  seed {seed:>4}  {status}")
    if not report["ok"]:
        for m in report["mismatches"]:
            print(f"  seed {m['seed']}: recorded {m['recorded'][:16]} "
                  f"!= replayed {m['replayed'][:16]}")
        print("REPLAY FAILED")
        return 1
    print(f"combined: {report['combined_replayed']} (matches recording)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
