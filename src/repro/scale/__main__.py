"""CLI for the scale-out runner: ``python -m repro.scale``.

Runs a canonical multi-seed world sweep and prints (optionally writes)
the per-seed decision hashes.  The JSON manifest deliberately contains
*only* determinism-relevant fields — world kind, config, seeds, hashes —
so two manifests produced at different worker counts diff clean iff the
runs were equivalent.  That is exactly what the CI
``parallel-equivalence`` job does::

    REPRO_WORKERS=1 python -m repro.scale --seeds 0,1,2,3 --json h1.json
    REPRO_WORKERS=4 python -m repro.scale --seeds 0,1,2,3 --json h4.json
    diff h1.json h4.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scale.runner import WorldRunner, WorldSpec
from repro.scale.worlds import WORLD_KINDS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scale",
        description="Run a multi-seed world sweep and emit decision hashes.")
    parser.add_argument("--world", default="bo", choices=sorted(WORLD_KINDS),
                        help="canonical world entrypoint (default: bo)")
    parser.add_argument("--seeds", default="0,1,2,3",
                        help="comma-separated seeds (default: 0,1,2,3)")
    parser.add_argument("--budget", type=int, default=None,
                        help="per-world experiment budget override")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS or 1; "
                             "0 = one per CPU)")
    parser.add_argument("--verify", action="store_true",
                        help="replay serially and assert hash equality")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the hash manifest here")
    args = parser.parse_args(argv)

    try:
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated ints, "
                     f"got {args.seeds!r}")
    if not seeds:
        parser.error("need at least one seed")
    config = {} if args.budget is None else {"budget": args.budget}

    runner = WorldRunner(args.workers, verify=args.verify)
    specs = [WorldSpec(seed=s, entrypoint=WORLD_KINDS[args.world],
                       config=config) for s in seeds]
    batch = runner.run(specs)

    print(f"world={args.world} workers={batch.workers} "
          f"verify={args.verify}")
    for result in batch:
        print(f"  seed {result.seed:>4}  {result.decision_hash}")
    print(f"combined: {batch.combined_hash}")

    if args.json:
        manifest = {
            "world": args.world,
            "config": config,
            "seeds": seeds,
            "hashes": {str(r.seed): r.decision_hash for r in batch},
            "combined": batch.combined_hash,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
