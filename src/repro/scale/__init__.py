"""Deterministic scale-out: parallel world execution (§3.2, M3/M7).

The paper's federation milestones assume many facilities running
concurrently; this package makes the reproduction do the same without
giving up its bit-for-bit determinism contract.  A seeded world is a
pure function of ``(seed, config, entrypoint)`` — PR 3's per-world id
sequencers and detlint rules exist precisely so that holds — which means
worlds can execute *anywhere* in any order and still agree with a serial
replay.  The pieces:

- :mod:`repro.scale.runner` — :class:`WorldRunner` fans
  :class:`WorldSpec`\\ s across a ``ProcessPoolExecutor`` (serial
  in-process fallback, ``REPRO_WORKERS`` env knob), returning results in
  spec order with a per-world decision hash;
- :mod:`repro.scale.hashing` — canonical plain-data hashing
  (:func:`decision_hash`) used to assert serial/parallel equivalence;
- :mod:`repro.scale.worlds` — canonical picklable entrypoints
  (:func:`~repro.scale.worlds.bo_world`,
  :func:`~repro.scale.worlds.testbed_world`);
- ``python -m repro.scale`` — CLI that runs a multi-seed sweep and
  emits a hash manifest, diffed by the CI ``parallel-equivalence`` job.

detlint rule D006 keeps every other module off raw process pools: all
fan-out goes through the runner, where the equivalence check lives.
"""

from repro.scale.hashing import canonical_bytes, combine_hashes, decision_hash
from repro.scale.runner import (WORKERS_ENV, DeterminismError, WorldBatch,
                                WorldFailure, WorldResult, WorldRunner,
                                WorldSpec, resolve_workers)
from repro.scale.worlds import WORLD_KINDS, bo_world, testbed_world

__all__ = [
    "WORKERS_ENV",
    "WORLD_KINDS",
    "DeterminismError",
    "WorldBatch",
    "WorldFailure",
    "WorldResult",
    "WorldRunner",
    "WorldSpec",
    "bo_world",
    "canonical_bytes",
    "combine_hashes",
    "decision_hash",
    "resolve_workers",
    "testbed_world",
]
