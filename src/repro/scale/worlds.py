"""Canonical, picklable world entrypoints for the scale-out runner.

A world entrypoint is a module-level callable ``fn(seed, config) ->
plain data`` — importable by reference in a worker process, returning
only data :func:`~repro.scale.hashing.decision_hash` can canonically
encode.  These two cover the repo's staple multi-seed shapes:

- :func:`bo_world` — the E12-shaped flat-BO campaign on the quantum-dot
  landscape (optimizer decisions only, no federation);
- :func:`testbed_world` — a full :class:`~repro.testbed.Testbed`
  federation running one campaign, reported picklably;
- :func:`service_world` — a multi-tenant
  :class:`~repro.service.CampaignService` under mixed load, whose
  decision log pins every admission/dispatch/terminal transition.

All are used by the ``parallel_worlds`` perf workload, the
``python -m repro.scale`` CLI, and the CI ``parallel-equivalence`` job.
"""

from __future__ import annotations

import numpy as np

from repro.core.campaign import CampaignSpec
from repro.labsci.quantum_dots import QuantumDotLandscape
from repro.methods.bayesopt import BayesianOptimizer
from repro.testbed import Testbed

__all__ = ["bo_world", "mesh_world", "testbed_world", "service_world",
           "WORLD_KINDS"]


def bo_world(seed: int, config: dict) -> dict:
    """Flat-BO campaign over the quantum-dot landscape (E12-shaped).

    The decision sequence is the full encoded (params, value) trajectory,
    so the hash is sensitive to *every* ask/tell — not just the winner.
    """
    budget = int(config.get("budget", 40))
    n_init = int(config.get("n_init", 8))
    n_candidates = int(config.get("n_candidates", 128))
    landscape = QuantumDotLandscape(seed=int(config.get("landscape_seed", 2)))
    space = landscape.space
    opt = BayesianOptimizer(space, np.random.default_rng(seed),
                            n_init=n_init, n_candidates=n_candidates)
    chosen: list[dict] = []
    values = np.empty(budget)
    for i in range(budget):
        params = opt.ask()
        value = landscape.objective_value(params)
        opt.tell(params, value)
        chosen.append(params)
        values[i] = value
    decisions = np.empty((budget, space.encoded_size + 1))
    decisions[:, :-1] = space.encode_batch(chosen)
    decisions[:, -1] = values
    best_value, _ = opt.best
    return {"seed": int(seed), "budget": budget,
            "best": float(best_value), "decisions": decisions}


def testbed_world(seed: int, config: dict) -> dict:
    """One-site :class:`Testbed` federation running a full campaign.

    Exercises the whole stack — kernel, bus, agents, orchestrator — so
    its decision hash is the strongest per-world determinism witness the
    repo has short of a full trace diff.
    """
    budget = int(config.get("budget", 15))
    n_sites = int(config.get("n_sites", 2))
    objective_key = str(config.get("objective_key", "plqy"))
    verified = bool(config.get("verified", True))
    site = (Testbed(seed=int(seed), n_sites=n_sites,
                    objective_key=objective_key)
            .site("site-0")
            .with_verification(verified))
    built = site.build()
    spec = CampaignSpec(name=f"world-{seed}", objective_key=objective_key,
                        max_experiments=budget)
    return built.run_report(spec).to_dict()


def service_world(seed: int, config: dict) -> dict:
    """Multi-tenant campaign service under a mixed open/closed load.

    The returned ``decisions`` rows are the service's terminal-transition
    log — campaign id, tenant, status, submit/start/finish times — so the
    hash witnesses admission control, fair-share dispatch order, *and*
    campaign outcomes.  Deferred imports keep the module import-light for
    worker processes that only run ``bo`` worlds.
    """
    from repro.service.loadgen import (LoadGenerator, TenantLoad,
                                       synthetic_runner)
    from repro.service.service import CampaignService, FacilitySlot
    from repro.sim.kernel import Simulator

    n_tenants = int(config.get("n_tenants", 4))
    n_slots = int(config.get("n_slots", 4))
    campaigns = int(config.get("campaigns", 6))
    experiments = int(config.get("experiments", 4))

    sim = Simulator()
    runner = synthetic_runner(sim, seed=int(seed),
                              mean_experiment_s=240.0)
    service = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)])
    loads = []
    for i in range(n_tenants):
        if i % 2 == 0:
            loads.append(TenantLoad(
                name=f"tenant-{i}", mode="closed", campaigns=campaigns,
                concurrency=2, experiments=experiments,
                share=1.0 + (i % 3)))
        else:
            loads.append(TenantLoad(
                name=f"tenant-{i}", mode="open", campaigns=campaigns,
                arrival_rate_per_s=1.0 / 300.0, experiments=experiments,
                deadline_s=float(config.get("deadline_s", 50_000.0))))
    gen = LoadGenerator(service, loads, seed=int(seed))
    summary = gen.run()
    return {"seed": int(seed), **summary,
            "decisions": service.decision_log()}


def mesh_world(seed: int, config: dict) -> dict:
    """Facility-sharded data mesh under a governance workload.

    N facilities ingest records into a
    :class:`~repro.data.shard.ShardedDiscoveryIndex`-backed federation,
    link cross-shard provenance, then run discovery queries and
    cross-site fetches.  The returned decision rows pin every query's
    result count, so the hash witnesses shard routing, inverted-index
    correctness, *and* replication-lag timing.

    Observability is bounded by construction: the tracer ring holds
    ``max_trace_events`` and the ingest rollup is a fixed window ring.
    Two side-channel config keys are deliberately **excluded** from the
    returned (hashed) value so recorded and replayed runs digest
    identically: ``trace_spill`` (path for the incremental JSONL trace
    spill) and ``provenance_out`` (path for the merged provenance dump).
    """
    from repro.data.fair import FairGovernor
    from repro.data.mesh import FederatedDataMesh
    from repro.data.provenance import qualified
    from repro.data.record import DataRecord
    from repro.data.shard import ShardedDiscoveryIndex
    from repro.net.topology import Topology
    from repro.net.transport import Network
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.rollup import WindowedCounter
    from repro.obs.trace import Tracer
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    n_facilities = int(config.get("n_facilities", 12))
    n_shards = int(config.get("n_shards", 4))
    records_per = int(config.get("records_per_facility", 3))
    queries = int(config.get("queries", n_facilities))
    fetches = int(config.get("fetches", min(n_facilities, 6)))
    max_trace_events = int(config.get("max_trace_events", 512))
    index_latency_s = float(config.get("index_latency_s", 0.5))
    govern = bool(config.get("govern", True))

    sim = Simulator()
    rngs = RngRegistry(seed=int(seed))
    rng = rngs.stream("mesh")
    topo = Topology.national_lab_testbed(n_facilities)
    net = Network(sim, topo, rngs.stream("net"))
    metrics = MetricsRegistry()
    tracer = Tracer(sim, run_id=f"mesh-{seed}",
                    max_events=max_trace_events,
                    spill=config.get("trace_spill"), metrics=metrics)
    index = ShardedDiscoveryIndex(n_shards)
    mesh = FederatedDataMesh(sim, net, index=index, index_site="site-0")
    for i in range(n_facilities):
        mesh.make_node(f"site-{i}", f"Lab {i}",
                       governor=FairGovernor() if govern else None,
                       index_latency_s=index_latency_s)

    techniques = ("powder-xrd", "uv-vis", "saxs", "xps", "raman", "nmr")
    ingest_rate = WindowedCounter(window_s=60.0, n_windows=32)
    produced: list[list[str]] = [[] for _ in range(n_facilities)]
    decisions: list[list[float]] = []
    fetched_bytes = [0.0]

    def campaign():
        with tracer.span("mesh-campaign", seed=int(seed)):
            with tracer.span("ingest"):
                for round_no in range(records_per):
                    for i in range(n_facilities):
                        site = f"site-{i}"
                        node = mesh.nodes[site]
                        tech = techniques[int(rng.integers(len(techniques)))]
                        rec = DataRecord(
                            source=f"instrument-{i}",
                            values={"plqy": float(rng.random()),
                                    "yield_pct": float(100 * rng.random())},
                            metadata={"technique": tech}, time=sim.now)
                        node.provenance.entity(rec.record_id)
                        act = node.provenance.activity(
                            f"syn-{rec.record_id}", started=sim.now,
                            ended=sim.now + 30.0)
                        node.provenance.was_generated_by(rec.record_id, act)
                        agent = node.provenance.agent(f"planner-{site}")
                        node.provenance.was_associated_with(act, agent)
                        # Every non-first record derives from the previous
                        # round's record at the ring neighbour — a foreign
                        # shard, referenced by fully-qualified id.
                        j = (i + 1) % n_facilities
                        if produced[j]:
                            node.provenance.was_derived_from(
                                rec.record_id,
                                qualified(f"site-{j}", produced[j][-1]),
                                cross_shard=True)
                        node.ingest(rec)
                        produced[i].append(rec.record_id)
                        ingest_rate.inc(sim.now)
                        tracer.instant("ingest", site=site,
                                       record=rec.record_id, technique=tech)
                    yield sim.timeout(1.0)
                # Let index replication drain before governance queries.
                yield sim.timeout(index_latency_s)
            with tracer.span("discover"):
                for q in range(queries):
                    from_idx = q % n_facilities
                    tech_idx = q % len(techniques)
                    entries = yield from mesh.discover(
                        f"site-{from_idx}",
                        **{"metadata.technique": techniques[tech_idx]})
                    decisions.append([float(q), float(from_idx),
                                      float(tech_idx), float(len(entries))])
                    tracer.instant("discover", site=f"site-{from_idx}",
                                   technique=techniques[tech_idx],
                                   results=len(entries))
            with tracer.span("fetch"):
                for f in range(fetches):
                    src = (f * 2 + 1) % n_facilities
                    if not produced[src]:
                        continue
                    record = yield from mesh.fetch(
                        produced[src][f % len(produced[src])],
                        to_site=f"site-{f % n_facilities}")
                    fetched_bytes[0] += record.size_bytes()
                    tracer.instant("fetch", record=record.record_id)

    sim.process(campaign())
    sim.run()

    merged = mesh.merged_provenance(namespaced=True)
    sampled = [qualified(f"site-{i}", produced[i][0])
               for i in range(n_facilities) if produced[i]]
    completeness = (sum(merged.completeness(e) for e in sampled)
                    / len(sampled)) if sampled else 0.0

    if config.get("provenance_out"):
        import json
        with open(str(config["provenance_out"]), "w",
                  encoding="utf-8", newline="\n") as fh:
            json.dump(merged.to_dict(), fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")
    tracer.close_spill()

    return {
        "seed": int(seed),
        "n_facilities": n_facilities,
        "n_shards": n_shards,
        "records": int(sum(len(p) for p in produced)),
        "decisions": np.asarray(decisions, dtype=float),
        "fetched_bytes": float(fetched_bytes[0]),
        "index": {k: int(v) for k, v in sorted(index.stats.items())},
        "shard_sizes": index.shard_sizes(),
        "provenance": {"nodes": len(merged),
                       "edges": merged.edge_count,
                       "pending": len(merged.pending_stitches),
                       "completeness": float(completeness)},
        "rollup": {"total": ingest_rate.total, "rate": ingest_rate.rate()},
        # Spill-invariant trace accounting: emitted and retained counts
        # are identical with or without a spill sink attached.
        "trace": {"events": tracer._seq,
                  "retained": len(tracer.events)},
    }


#: name -> entrypoint, for the CLI and config-driven sweeps.
WORLD_KINDS = {"bo": bo_world, "mesh": mesh_world, "service": service_world,
               "testbed": testbed_world}
