"""Canonical, picklable world entrypoints for the scale-out runner.

A world entrypoint is a module-level callable ``fn(seed, config) ->
plain data`` — importable by reference in a worker process, returning
only data :func:`~repro.scale.hashing.decision_hash` can canonically
encode.  These two cover the repo's staple multi-seed shapes:

- :func:`bo_world` — the E12-shaped flat-BO campaign on the quantum-dot
  landscape (optimizer decisions only, no federation);
- :func:`testbed_world` — a full :class:`~repro.testbed.Testbed`
  federation running one campaign, reported picklably;
- :func:`service_world` — a multi-tenant
  :class:`~repro.service.CampaignService` under mixed load, whose
  decision log pins every admission/dispatch/terminal transition.

All are used by the ``parallel_worlds`` perf workload, the
``python -m repro.scale`` CLI, and the CI ``parallel-equivalence`` job.
"""

from __future__ import annotations

import numpy as np

from repro.core.campaign import CampaignSpec
from repro.labsci.quantum_dots import QuantumDotLandscape
from repro.methods.bayesopt import BayesianOptimizer
from repro.testbed import Testbed

__all__ = ["bo_world", "testbed_world", "service_world", "WORLD_KINDS"]


def bo_world(seed: int, config: dict) -> dict:
    """Flat-BO campaign over the quantum-dot landscape (E12-shaped).

    The decision sequence is the full encoded (params, value) trajectory,
    so the hash is sensitive to *every* ask/tell — not just the winner.
    """
    budget = int(config.get("budget", 40))
    n_init = int(config.get("n_init", 8))
    n_candidates = int(config.get("n_candidates", 128))
    landscape = QuantumDotLandscape(seed=int(config.get("landscape_seed", 2)))
    space = landscape.space
    opt = BayesianOptimizer(space, np.random.default_rng(seed),
                            n_init=n_init, n_candidates=n_candidates)
    decisions = np.empty((budget, space.encoded_size + 1))
    for i in range(budget):
        params = opt.ask()
        value = landscape.objective_value(params)
        opt.tell(params, value)
        decisions[i, :-1] = space.encode(params)
        decisions[i, -1] = value
    best_value, _ = opt.best
    return {"seed": int(seed), "budget": budget,
            "best": float(best_value), "decisions": decisions}


def testbed_world(seed: int, config: dict) -> dict:
    """One-site :class:`Testbed` federation running a full campaign.

    Exercises the whole stack — kernel, bus, agents, orchestrator — so
    its decision hash is the strongest per-world determinism witness the
    repo has short of a full trace diff.
    """
    budget = int(config.get("budget", 15))
    n_sites = int(config.get("n_sites", 2))
    objective_key = str(config.get("objective_key", "plqy"))
    verified = bool(config.get("verified", True))
    site = (Testbed(seed=int(seed), n_sites=n_sites,
                    objective_key=objective_key)
            .site("site-0")
            .with_verification(verified))
    built = site.build()
    spec = CampaignSpec(name=f"world-{seed}", objective_key=objective_key,
                        max_experiments=budget)
    return built.run_report(spec).to_dict()


def service_world(seed: int, config: dict) -> dict:
    """Multi-tenant campaign service under a mixed open/closed load.

    The returned ``decisions`` rows are the service's terminal-transition
    log — campaign id, tenant, status, submit/start/finish times — so the
    hash witnesses admission control, fair-share dispatch order, *and*
    campaign outcomes.  Deferred imports keep the module import-light for
    worker processes that only run ``bo`` worlds.
    """
    from repro.service.loadgen import (LoadGenerator, TenantLoad,
                                       synthetic_runner)
    from repro.service.service import CampaignService, FacilitySlot
    from repro.sim.kernel import Simulator

    n_tenants = int(config.get("n_tenants", 4))
    n_slots = int(config.get("n_slots", 4))
    campaigns = int(config.get("campaigns", 6))
    experiments = int(config.get("experiments", 4))

    sim = Simulator()
    runner = synthetic_runner(sim, seed=int(seed),
                              mean_experiment_s=240.0)
    service = CampaignService(
        sim, [FacilitySlot(f"slot-{i}", runner) for i in range(n_slots)])
    loads = []
    for i in range(n_tenants):
        if i % 2 == 0:
            loads.append(TenantLoad(
                name=f"tenant-{i}", mode="closed", campaigns=campaigns,
                concurrency=2, experiments=experiments,
                share=1.0 + (i % 3)))
        else:
            loads.append(TenantLoad(
                name=f"tenant-{i}", mode="open", campaigns=campaigns,
                arrival_rate_per_s=1.0 / 300.0, experiments=experiments,
                deadline_s=float(config.get("deadline_s", 50_000.0))))
    gen = LoadGenerator(service, loads, seed=int(seed))
    summary = gen.run()
    return {"seed": int(seed), **summary,
            "decisions": service.decision_log()}


#: name -> entrypoint, for the CLI and config-driven sweeps.
WORLD_KINDS = {"bo": bo_world, "service": service_world,
               "testbed": testbed_world}
