"""Canonical decision hashing for cross-process equivalence checks.

A world's *decision sequence* — everything its entrypoint returns — is
reduced to one hex digest so that a serial run and a parallel run (or two
runs on different machines) can be compared without shipping the full
results around.  The encoding is canonical by construction:

- dict entries are sorted by their encoded keys, sets by their encoded
  elements, so container iteration order never leaks into the digest;
- floats are encoded via ``repr`` (shortest round-trip form), which is
  bit-faithful — two values hash equal iff they are the same double;
- numpy arrays contribute dtype, shape, and raw C-order bytes;
- every element is length-framed, so concatenations cannot collide
  (``["ab"]`` vs ``["a", "b"]`` encode differently).

Unsupported types raise :class:`TypeError` instead of falling back to
``repr`` — a ``repr`` with an embedded ``0x7f...`` address would make the
hash a function of the allocator, which is exactly what this module
exists to rule out.  Worlds should return plain data (numbers, strings,
containers, arrays, dataclasses of those).
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

import numpy as np

__all__ = ["canonical_bytes", "decision_hash", "combine_hashes"]

_MAX_DEPTH = 64


def _frame(payload: bytes) -> bytes:
    """Length-prefix one encoded element (unambiguous concatenation)."""
    return b"%d:%s" % (len(payload), payload)


def _encode(obj: Any, depth: int) -> bytes:
    if depth > _MAX_DEPTH:
        raise ValueError("decision structure nested deeper than "
                         f"{_MAX_DEPTH} levels (cycle?)")
    if obj is None:
        return b"N"
    if isinstance(obj, bool):
        return b"T" if obj else b"F"
    if isinstance(obj, int):
        return b"i" + str(int(obj)).encode("ascii")
    if isinstance(obj, float):
        # float() first: numpy's float64 subclasses float but (since
        # numpy 2) reprs as 'np.float64(x)', which must hash like x.
        return b"f" + repr(float(obj)).encode("ascii")
    if isinstance(obj, str):
        return b"s" + obj.encode("utf-8")
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return b"b" + bytes(obj)
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        head = f"a{arr.dtype.str}{arr.shape}".encode("ascii")
        return head + arr.tobytes()
    if isinstance(obj, np.generic):
        return _encode(obj.item(), depth)
    if isinstance(obj, (list, tuple)):
        tag = b"l" if isinstance(obj, list) else b"t"
        return tag + b"".join(_frame(_encode(x, depth + 1)) for x in obj)
    if isinstance(obj, dict):
        items = [(_encode(k, depth + 1), _encode(v, depth + 1))
                 for k, v in obj.items()]
        items.sort(key=lambda kv: kv[0])
        return b"d" + b"".join(_frame(k) + _frame(v) for k, v in items)
    if isinstance(obj, (set, frozenset)):
        elems = sorted(_encode(x, depth + 1) for x in obj)
        return b"S" + b"".join(_frame(e) for e in elems)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {f.name: getattr(obj, f.name)
                  for f in dataclasses.fields(obj)}
        return (b"D" + _frame(type(obj).__name__.encode("utf-8"))
                + _frame(_encode(fields, depth + 1)))
    raise TypeError(
        f"decision_hash cannot canonically encode {type(obj).__name__!r}; "
        f"return plain data (numbers, strings, containers, numpy arrays, "
        f"dataclasses of those) from world entrypoints")


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte encoding of a plain-data structure."""
    return _encode(obj, 0)


def decision_hash(obj: Any) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`\\ (``obj``)."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


def combine_hashes(hashes: "list[str] | tuple[str, ...]") -> str:
    """Order-sensitive digest over a sequence of per-world digests."""
    h = hashlib.sha256()
    for piece in hashes:
        h.update(_frame(piece.encode("ascii")))
    return h.hexdigest()
