"""The deterministic parallel world runner.

PR 3's determinism contract (per-world :class:`~repro.sim.ids.IdSequencer`
streams, detlint-enforced freedom from process-global state) guarantees
that a seeded world is a pure function of ``(seed, config, entrypoint)``
— it does not matter *where* it runs.  This module cashes that in: a
:class:`WorldRunner` fans a list of :class:`WorldSpec`\\ s across a
process pool and the results are, by contract, byte-identical to running
them one after another in this process.  The contract is checkable: every
world result carries a :func:`~repro.scale.hashing.decision_hash`, and
``verify=True`` (or the CI ``parallel-equivalence`` job) replays the
batch serially and compares digests world by world.

Worker count resolution (:func:`resolve_workers`)::

    REPRO_WORKERS unset      -> min(8, os.cpu_count()): real parallelism
                                by default, capped so a big box is not
                                oversubscribed by nested tooling
    REPRO_WORKERS=N  (N>=1)  -> N workers; 1 means serial in-process
    REPRO_WORKERS=0 / auto   -> os.cpu_count()

The pool is *warm and persistent*: the first parallel batch forks the
workers (``fork`` context, so the parent's imports and ground-truth
tables are shared copy-on-write instead of re-imported per world) and
later batches reuse them, with specs dispatched in chunks to amortize
pickling.  Worlds are pure functions of ``(seed, entrypoint, config)``
by the determinism contract, so a worker forked before your latest
parent-process mutation cannot change any result — anything a world
reads is in its spec.  :meth:`WorldRunner.warm` pre-forks outside your
timed region; :meth:`WorldRunner.close` (or using the runner as a
context manager) releases the workers.

Entrypoints must be module-level callables (or ``"pkg.mod:fn"`` strings)
taking ``(seed, config)`` and returning plain picklable data — the
process pool ships them by reference and the decision hash refuses
address-dependent values.  This module is the **one sanctioned home** of
process-pool primitives in the repository; detlint rule D006 flags
``ProcessPoolExecutor``/``multiprocessing`` use anywhere else.
"""

from __future__ import annotations

import os
from concurrent import futures
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Iterable, Optional, Sequence, Union

from repro.obs.metrics import MetricsRegistry
from repro.scale.hashing import combine_hashes, decision_hash

__all__ = ["WORKERS_ENV", "DeterminismError", "WorldFailure", "WorldSpec",
           "WorldResult", "WorldBatch", "WorldRunner", "resolve_workers"]

#: Environment knob read by :func:`resolve_workers`.
WORKERS_ENV = "REPRO_WORKERS"

Entrypoint = Union[Callable[[int, dict], Any], str]


class WorldFailure(RuntimeError):
    """A world's entrypoint raised; carries the seed for triage."""

    def __init__(self, seed: int, message: str) -> None:
        super().__init__(f"world seed={seed} failed: {message}")
        self.seed = seed


class DeterminismError(AssertionError):
    """Parallel and serial replays of the same specs disagreed."""


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count from the argument or ``REPRO_WORKERS``.

    With no argument and no env var, defaults to ``min(8, cpu_count)``:
    parallel execution is hash-verified equivalent to serial (the CI
    equivalence job holds that line), so the default should win
    wall-clock time on multi-core machines instead of leaving them idle.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return min(8, os.cpu_count() or 1)
        if raw == "auto":
            workers = 0
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is not an integer or 'auto'"
                ) from None
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class WorldSpec:
    """One seeded world: ``entrypoint(seed, config)`` describes it fully."""

    seed: int
    entrypoint: Entrypoint
    config: dict = field(default_factory=dict)
    name: str = ""

    @property
    def label(self) -> str:
        return self.name or f"world-{self.seed}"


@dataclass(frozen=True)
class WorldResult:
    """What one world produced, plus its decision digest."""

    seed: int
    name: str
    ok: bool
    value: Any = None
    decision_hash: str = ""
    error: str = ""


class WorldBatch:
    """Ordered results of one :meth:`WorldRunner.run` call."""

    def __init__(self, results: Sequence[WorldResult], workers: int) -> None:
        self.results = list(results)
        self.workers = workers

    @property
    def values(self) -> list:
        return [r.value for r in self.results]

    @property
    def hashes(self) -> list[str]:
        return [r.decision_hash for r in self.results]

    @property
    def combined_hash(self) -> str:
        return combine_hashes(self.hashes)

    def merged_metrics(self, key: str = "metrics_state") -> MetricsRegistry:
        """One registry merged from every world's per-shard metrics dump.

        Worlds that want their observability aggregated include a
        ``MetricsRegistry.state()`` dump under ``key`` in their returned
        dict (plain data, so it survives the process-pool pickle).
        Counters add, gauges sum, histograms merge bucket-wise — the
        same path :mod:`repro.service` tenants report through.
        """
        merged = MetricsRegistry()
        for result in self.results:
            if result.ok and isinstance(result.value, dict):
                state = result.value.get(key)
                if state is not None:
                    merged.merge_state(state)
        return merged

    def raise_on_failure(self) -> "WorldBatch":
        for r in self.results:
            if not r.ok:
                raise WorldFailure(r.seed, r.error)
        return self

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)


def _resolve_entrypoint(entrypoint: Entrypoint) -> Callable[[int, dict], Any]:
    if callable(entrypoint):
        return entrypoint
    module_name, _, attr = str(entrypoint).partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"string entrypoint must look like 'pkg.mod:fn', "
            f"got {entrypoint!r}")
    fn = getattr(import_module(module_name), attr)
    if not callable(fn):
        raise TypeError(f"{entrypoint!r} resolved to non-callable {fn!r}")
    return fn


def _warm_probe(index: int) -> int:
    """No-op worker task used by :meth:`WorldRunner.warm` to pre-fork."""
    return index


def _execute(spec: WorldSpec) -> WorldResult:
    """Run one world to completion (in this or a worker process).

    Failures are returned as data rather than raised: worker exceptions
    do not always survive pickling, and a deterministic runner must not
    let one bad seed tear down the sibling worlds mid-flight.
    """
    try:
        fn = _resolve_entrypoint(spec.entrypoint)
        value = fn(spec.seed, dict(spec.config))
        return WorldResult(seed=spec.seed, name=spec.label, ok=True,
                           value=value, decision_hash=decision_hash(value))
    except Exception as exc:  # noqa: BLE001 - reported per-world
        return WorldResult(seed=spec.seed, name=spec.label, ok=False,
                           error=f"{type(exc).__name__}: {exc}")


class WorldRunner:
    """Fans seeded worlds across processes, deterministically.

    Parameters
    ----------
    workers:
        ``None`` reads ``REPRO_WORKERS`` (default 1 = serial); ``0`` or
        ``"auto"`` in the env means one worker per CPU.  With one worker
        (or one spec) everything runs in-process — no pool, no pickling.
    metrics:
        Optional shared registry; the runner reports ``scale.worlds``,
        ``scale.batches``, and a ``scale.workers`` gauge into it.
    verify:
        Replay every parallel batch serially and compare decision hashes
        (:class:`DeterminismError` on any mismatch).  Costs a full extra
        run; meant for CI and for flushing out nondeterminism, not for
        production sweeps.
    strict:
        Raise :class:`WorldFailure` on the first failed world (default).
        When ``False`` the failures stay in the batch as data.

    Notes
    -----
    The worker pool is created on the first parallel batch and kept warm
    across :meth:`run` calls (``scale.pools_forked`` vs
    ``scale.pool_reuses`` counters track the amortization).  Call
    :meth:`close` — or use the runner as a context manager — when done;
    an unclosed runner releases its workers best-effort on finalization.
    """

    def __init__(self, workers: Optional[int] = None, *,
                 metrics: Optional[MetricsRegistry] = None,
                 verify: bool = False, strict: bool = True) -> None:
        self.workers = resolve_workers(workers)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.verify = verify
        self.strict = strict
        self._pool: Optional[futures.ProcessPoolExecutor] = None

    # -- execution ---------------------------------------------------------

    def run(self, specs: Iterable[WorldSpec]) -> WorldBatch:
        """Run every spec; results come back in spec order regardless of
        completion order (the contract benches rely on)."""
        specs = list(specs)
        used = min(self.workers, len(specs)) if specs else 1
        if used > 1:
            results = self._run_parallel(specs, used)
        else:
            used = 1
            results = [_execute(spec) for spec in specs]
        batch = WorldBatch(results, workers=used)

        if self.verify and used > 1:
            serial = WorldBatch([_execute(s) for s in specs], workers=1)
            self._compare(serial, batch)

        self.metrics.counter("scale.worlds").inc(len(specs))
        self.metrics.counter("scale.batches").inc()
        self.metrics.gauge("scale.workers").set(used)
        if self.strict:
            batch.raise_on_failure()
        return batch

    def map(self, entrypoint: Entrypoint, seeds: Iterable[int],
            config: Optional[dict] = None) -> list:
        """Sugar: run ``entrypoint`` once per seed, return the values."""
        cfg = dict(config or {})
        batch = self.run(WorldSpec(seed=int(s), entrypoint=entrypoint,
                                   config=cfg) for s in seeds)
        return batch.values

    # -- pool lifecycle ----------------------------------------------------

    def warm(self) -> "WorldRunner":
        """Pre-fork the worker pool outside any timed region.

        Runs one trivial probe task per worker so the executor spawns
        its processes (and pays the fork + pickle-protocol handshake)
        now instead of inside the first measured batch.  Serial runners
        (``workers <= 1``) are a no-op.  Returns ``self`` for chaining.
        """
        if self.workers > 1:
            pool = self._ensure_pool()
            list(pool.map(_warm_probe, range(self.workers)))
        return self

    def close(self) -> None:
        """Shut the warm pool down and release its worker processes."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "WorldRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - finalizer timing varies
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- internals ---------------------------------------------------------

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        # The sanctioned process-pool call site (detlint D006): everything
        # else in the repo must fan out through this runner.  ``fork`` is
        # pinned on POSIX so worker state is a copy-on-write snapshot of
        # this process — imports and ground-truth tables are shared, and
        # string/callable entrypoints resolve without re-importing.
        if self._pool is not None:
            self.metrics.counter("scale.pool_reuses").inc()
            return self._pool
        try:
            import multiprocessing  # detlint: ignore[D006] — WorldRunner is the sanctioned runner
            ctx = multiprocessing.get_context("fork")  # detlint: ignore[D006] — WorldRunner is the sanctioned runner
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = None
        self._pool = futures.ProcessPoolExecutor(  # detlint: ignore[D006] — WorldRunner is the sanctioned runner
            max_workers=self.workers, mp_context=ctx)
        self.metrics.counter("scale.pools_forked").inc()
        return self._pool

    def _run_parallel(self, specs: list[WorldSpec],
                      used: int) -> list[WorldResult]:
        pool = self._ensure_pool()
        # Chunked dispatch: ship several specs per worker round-trip so
        # pickling and queue wakeups amortize, while keeping ~4 chunks
        # per worker in flight for load balance across uneven worlds.
        chunksize = max(1, len(specs) // (used * 4))
        self.metrics.gauge("scale.dispatch_chunksize").set(chunksize)
        try:
            return list(pool.map(_execute, specs, chunksize=chunksize))
        except futures.process.BrokenProcessPool:
            # A worker died (OOM kill, signal); drop the broken pool so a
            # retry can fork a fresh one, then surface the failure.
            self.close()
            raise

    @staticmethod
    def _compare(serial: WorldBatch, parallel: WorldBatch) -> None:
        mismatched = [
            (s.seed, s.decision_hash, p.decision_hash)
            for s, p in zip(serial.results, parallel.results)
            if s.ok and p.ok and s.decision_hash != p.decision_hash]
        if mismatched:
            detail = "; ".join(
                f"seed {seed}: serial {sh[:12]} != parallel {ph[:12]}"
                for seed, sh, ph in mismatched)
            raise DeterminismError(
                f"parallel execution diverged from serial replay: {detail}")
