"""Gaussian-process regression from scratch (numpy/scipy).

A standard exact GP: Cholesky-factored covariance with observation noise,
posterior mean/std prediction, log marginal likelihood, and a small
grid-search hyperparameter fit — the "Gaussian processes for uncertainty
quantification" the paper's agents orchestrate (§3.3).

The surrogate is the hot path of every campaign loop (E5/E10/E12 run it
hundreds of times per seed), so it carries three fast paths, all
measured by :mod:`repro.perf`:

- :meth:`GaussianProcess.observe` appends one observation by a rank-1
  Cholesky update — O(n²) instead of the O(n³) refit;
- :meth:`GaussianProcess.fit_hyperparameters` computes the pairwise
  distance matrix **once** per grid search and derives every
  (lengthscale, amplitude) candidate from it by elementwise ops
  (:meth:`~repro.methods.kernels._Stationary.from_unit_sqdist`);
- :meth:`GaussianProcess.predict` reads the prior variance from
  :meth:`~repro.methods.kernels._Stationary.diag` instead of building an
  m×m query covariance for its diagonal.

Batch contract (audited for the vectorized ask path): ``predict``,
``sample_posterior`` and the acquisitions in
:mod:`repro.methods.acquisition` operate on whole ``(m, d)`` query
matrices with numpy/scipy calls only — no per-candidate Python loops —
so ``BayesianOptimizer.ask`` stays vectorized end to end from candidate
generation to the acquisition argmax.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

from repro.methods.kernels import RBF, _sqdist


class GaussianProcess:
    """Exact GP regression with a stationary kernel.

    Parameters
    ----------
    kernel:
        Kernel object (``RBF`` / ``Matern52``); default RBF.
    noise:
        Observation noise standard deviation.
    normalize_y:
        Standardize targets internally (recommended: keeps the unit-scale
        kernel amplitude meaningful across objectives).

    Notes
    -----
    Fitting is :math:`O(n^3)`; AISLE campaigns observe hundreds of points,
    where exact GPs are the method of choice.  Appending observations via
    :meth:`observe` is :math:`O(n^2)` per point.
    """

    def __init__(self, kernel=None, noise: float = 1e-2,
                 normalize_y: bool = True) -> None:
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self.kernel = kernel or RBF()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0
        # Unit-lengthscale squared-distance matrix over the training set,
        # maintained by fit_hyperparameters/observe so repeated grid
        # searches never recompute the O(n²·d) expansion.
        self._d2_unit: Optional[np.ndarray] = None
        self._last_grid_lml: Optional[float] = None
        #: Factorization counters (read by tests and repro.perf).
        self.n_factorizations = 0
        self.n_incremental_updates = 0

    # -- fitting ------------------------------------------------------------------

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    def _normalize(self, y: np.ndarray) -> np.ndarray:
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        return (y - self._y_mean) / self._y_std

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations (replaces prior data)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        z = self._normalize(y)
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise ** 2
        self._chol = cho_factor(K, lower=True)
        self.n_factorizations += 1
        self._alpha = cho_solve(self._chol, z)
        self._X = X
        self._y = y
        self._z = z
        self._d2_unit = None
        return self

    def observe(self, x: np.ndarray, y: float) -> "GaussianProcess":
        """Append one observation by a rank-1 Cholesky update — O(n²).

        Equivalent (to numerical precision) to refitting on the
        concatenated data with the current kernel, at O(n²) instead of
        O(n³): the factor gains one row via a triangular solve, and the
        weights are re-solved against the (re-standardized) targets.
        Falls back to a full :meth:`fit` on the first observation or if
        the update would lose positive-definiteness.
        """
        x = np.asarray(x, dtype=np.float64).reshape(1, -1)
        if self._X is None:
            return self.fit(x, np.asarray([y], dtype=np.float64))
        if x.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"x has {x.shape[1]} features but the GP was fit on "
                f"{self._X.shape[1]}")
        n = self._X.shape[0]
        k = self.kernel(self._X, x).ravel()
        kss = float(self.kernel.diag(x)[0]) + self.noise ** 2
        L = self._chol[0]
        w = solve_triangular(L, k, lower=True, check_finite=False)
        d2 = kss - float(w @ w)
        new_X = np.vstack([self._X, x])
        new_y = np.append(self._y, float(y))
        if d2 <= 1e-10 * kss:
            # Numerically degenerate append (e.g. duplicate point):
            # refactor from scratch rather than poison the factor.
            return self.fit(new_X, new_y)
        L_new = np.zeros((n + 1, n + 1))
        L_new[:n, :n] = L
        L_new[n, :n] = w
        L_new[n, n] = np.sqrt(d2)
        self._chol = (L_new, True)
        self.n_incremental_updates += 1
        self._X = new_X
        self._y = new_y
        self._z = self._normalize(new_y)
        self._alpha = cho_solve(self._chol, self._z, check_finite=False)
        if self._d2_unit is not None:
            old = self._d2_unit
            grown = np.empty((n + 1, n + 1))
            grown[:n, :n] = old
            col = _sqdist(self._X[:n], x, 1.0).ravel()
            grown[:n, n] = col
            grown[n, :n] = col
            grown[n, n] = 0.0
            self._d2_unit = grown
        return self

    def predict(self, Xs: np.ndarray,
                return_std: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and std) at query points.

        With ``return_std=False`` only the mean is computed: the
        Cholesky-solve path is skipped entirely and the second element is
        an array of zeros (the mean is identical either way).
        """
        if self._X is None:
            raise RuntimeError("fit() before predict()")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = Ks @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        # One triangular solve: var = k(x,x) - ||L^{-1} k_*||², reading
        # the prior variance from the kernel diagonal (O(m)) instead of
        # materializing the m×m query covariance.
        w = solve_triangular(self._chol[0], Ks.T, lower=True,
                             check_finite=False)
        prior_var = self.kernel.diag(Xs)
        var = np.maximum(prior_var - np.sum(w * w, axis=0), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def sample_posterior(self, Xs: np.ndarray, rng: np.random.Generator,
                         n_samples: int = 1) -> np.ndarray:
        """Draw joint posterior samples at query points (for Thompson)."""
        if self._X is None:
            raise RuntimeError("fit() before sampling")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = (Ks @ self._alpha) * self._y_std + self._y_mean
        v = cho_solve(self._chol, Ks.T)
        cov = self.kernel(Xs, Xs) - Ks @ v
        cov = (cov + cov.T) / 2.0
        cov[np.diag_indices_from(cov)] += 1e-10
        # "eigh" tolerates the near-semidefinite covariances a conditioned
        # GP produces; cholesky would need much larger jitter.
        draws = rng.multivariate_normal(
            np.zeros(Xs.shape[0]), cov, size=n_samples, method="eigh")
        return mean[None, :] + draws * self._y_std

    # -- model selection ----------------------------------------------------------------

    def log_marginal_likelihood(self) -> float:
        """LML of the standardized targets under the current kernel."""
        if self._X is None or self._z is None:
            raise RuntimeError("fit() before computing the LML")
        L = self._chol[0]
        n = self._X.shape[0]
        return float(-0.5 * self._z @ self._alpha
                     - np.sum(np.log(np.diag(L)))
                     - 0.5 * n * np.log(2 * np.pi))

    def fit_hyperparameters(
            self, X: Optional[np.ndarray] = None,
            y: Optional[np.ndarray] = None,
            lengthscales: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
            amplitudes: tuple[float, ...] = (0.5, 1.0, 2.0), *,
            exact: bool = True,
            early_exit_tol: Optional[float] = None
    ) -> "GaussianProcess":
        """Grid-search kernel hyperparameters by marginal likelihood.

        A deliberately small, deterministic grid: cheap enough to rerun at
        every campaign iteration, good enough to adapt to the landscape's
        scale (the guides' advice — measure, don't over-engineer).

        The grid shares work instead of rebuilding the kernel matrix per
        candidate.  In ``exact`` mode (default) each lengthscale's
        distance matrix and unit-amplitude base are computed once and the
        amplitude candidates are exact rescalings — bit-identical to
        evaluating every candidate from scratch, so campaign decision
        sequences are unchanged.  With ``exact=False`` the whole grid is
        derived from a single unit-lengthscale distance matrix (cached
        across calls and grown in place by :meth:`observe`) — the fastest
        path, equal only to floating-point precision.  Either way the
        incumbent kernel is never mutated mid-search: a candidate whose
        factorization fails is skipped, and the GP state only changes
        once a winner exists.

        Parameters
        ----------
        X, y:
            Training data; ``None`` reuses the data the GP already holds
            (from a prior ``fit``/``observe`` chain).
        exact:
            ``True`` — per-lengthscale sharing, bit-identical selection;
            ``False`` — everything derived from the cached
            unit-lengthscale distance matrix.
        early_exit_tol:
            When set, the incumbent kernel is scored first and kept —
            skipping the rest of the grid — if its LML is within this
            tolerance of the best LML the previous grid search found.
            ``None`` (default) always scans the full grid.
        """
        if X is None:
            if self._X is None:
                raise RuntimeError("no data: pass X, y or fit() first")
            X, y = self._X, self._y
            d2_unit = self._d2_unit
        else:
            X = np.atleast_2d(np.asarray(X, dtype=np.float64))
            y = np.asarray(y, dtype=np.float64).ravel()
            if X.shape[0] != y.shape[0]:
                raise ValueError(
                    f"X has {X.shape[0]} rows but y has {y.shape[0]}")
            if X.shape[0] == 0:
                raise ValueError("need at least one observation")
            d2_unit = None
        if not exact and d2_unit is None:
            d2_unit = _sqdist(X, X, 1.0)
        z = self._normalize(y)
        n = X.shape[0]
        noise_var = self.noise ** 2
        const = -0.5 * n * np.log(2 * np.pi)
        diag_idx = np.diag_indices(n)

        def factor(K):
            """(lml, chol, alpha) for one candidate matrix, or None."""
            K[diag_idx] += noise_var
            try:
                chol = cho_factor(K, lower=True)
            except np.linalg.LinAlgError:
                return None
            self.n_factorizations += 1
            alpha = cho_solve(chol, z, check_finite=False)
            lml = float(-0.5 * z @ alpha
                        - np.sum(np.log(np.diag(chol[0]))) + const)
            return lml, chol, alpha

        best = None  # (lml, kernel, chol, alpha)
        if early_exit_tol is not None and self._last_grid_lml is not None:
            incumbent = self.kernel
            K = (incumbent.from_unit_sqdist(d2_unit) if not exact
                 else incumbent(X, X))
            scored = factor(K)
            if (scored is not None
                    and scored[0] >= self._last_grid_lml - early_exit_tol):
                best = (scored[0], incumbent, scored[1], scored[2])
        if best is None:
            for l in lengthscales:
                base = None
                for a in amplitudes:
                    candidate = self.kernel.with_params(l, a)
                    if base is None:
                        base = (candidate._base(d2_unit * (1.0 / (l * l)))
                                if not exact
                                else candidate._base(_sqdist(X, X, l)))
                    scored = factor(candidate.amplitude ** 2 * base)
                    if scored is not None and (best is None
                                               or scored[0] > best[0]):
                        best = (scored[0], candidate, scored[1], scored[2])
        if best is None:
            # Every candidate failed to factor: leave the kernel exactly
            # as it was and let a plain fit surface the numerical problem.
            return self.fit(X, y)
        lml, self.kernel, self._chol, self._alpha = best
        self._X, self._y, self._z = X, y, z
        self._d2_unit = d2_unit
        self._last_grid_lml = lml
        return self
