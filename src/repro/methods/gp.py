"""Gaussian-process regression from scratch (numpy/scipy).

A standard exact GP: Cholesky-factored covariance with observation noise,
posterior mean/std prediction, log marginal likelihood, and a small
grid-search hyperparameter fit — the "Gaussian processes for uncertainty
quantification" the paper's agents orchestrate (§3.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.methods.kernels import RBF


class GaussianProcess:
    """Exact GP regression with a stationary kernel.

    Parameters
    ----------
    kernel:
        Kernel object (``RBF`` / ``Matern52``); default RBF.
    noise:
        Observation noise standard deviation.
    normalize_y:
        Standardize targets internally (recommended: keeps the unit-scale
        kernel amplitude meaningful across objectives).

    Notes
    -----
    Fitting is :math:`O(n^3)`; AISLE campaigns observe hundreds of points,
    where exact GPs are the method of choice.
    """

    def __init__(self, kernel=None, noise: float = 1e-2,
                 normalize_y: bool = True) -> None:
        if noise <= 0:
            raise ValueError("noise must be > 0")
        self.kernel = kernel or RBF()
        self.noise = float(noise)
        self.normalize_y = normalize_y
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    # -- fitting ------------------------------------------------------------------

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else self._X.shape[0]

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations (replaces prior data)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        if self.normalize_y:
            self._y_mean = float(np.mean(y))
            self._y_std = float(np.std(y)) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        z = (y - self._y_mean) / self._y_std
        K = self.kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise ** 2
        self._chol = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._chol, z)
        self._X = X
        self._z = z
        return self

    def predict(self, Xs: np.ndarray,
                return_std: bool = True) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and std) at query points."""
        if self._X is None:
            raise RuntimeError("fit() before predict()")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = Ks @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean, np.zeros_like(mean)
        v = cho_solve(self._chol, Ks.T)
        prior_var = np.diag(self.kernel(Xs, Xs))
        var = np.maximum(prior_var - np.sum(Ks * v.T, axis=1), 1e-12)
        std = np.sqrt(var) * self._y_std
        return mean, std

    def sample_posterior(self, Xs: np.ndarray, rng: np.random.Generator,
                         n_samples: int = 1) -> np.ndarray:
        """Draw joint posterior samples at query points (for Thompson)."""
        if self._X is None:
            raise RuntimeError("fit() before sampling")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=np.float64))
        Ks = self.kernel(Xs, self._X)
        mean = (Ks @ self._alpha) * self._y_std + self._y_mean
        v = cho_solve(self._chol, Ks.T)
        cov = self.kernel(Xs, Xs) - Ks @ v
        cov = (cov + cov.T) / 2.0
        cov[np.diag_indices_from(cov)] += 1e-10
        # "eigh" tolerates the near-semidefinite covariances a conditioned
        # GP produces; cholesky would need much larger jitter.
        draws = rng.multivariate_normal(
            np.zeros(Xs.shape[0]), cov, size=n_samples, method="eigh")
        return mean[None, :] + draws * self._y_std

    # -- model selection ----------------------------------------------------------------

    def log_marginal_likelihood(self) -> float:
        """LML of the standardized targets under the current kernel."""
        if self._X is None:
            raise RuntimeError("fit() before computing the LML")
        L = self._chol[0]
        n = self._X.shape[0]
        return float(-0.5 * self._z @ self._alpha
                     - np.sum(np.log(np.diag(L)))
                     - 0.5 * n * np.log(2 * np.pi))

    def fit_hyperparameters(
            self, X: np.ndarray, y: np.ndarray,
            lengthscales: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
            amplitudes: tuple[float, ...] = (0.5, 1.0, 2.0)
    ) -> "GaussianProcess":
        """Grid-search kernel hyperparameters by marginal likelihood.

        A deliberately small, deterministic grid: cheap enough to rerun at
        every campaign iteration, good enough to adapt to the landscape's
        scale (the guides' advice — measure, don't over-engineer).
        """
        best_lml, best_kernel = -np.inf, self.kernel
        for l in lengthscales:
            for a in amplitudes:
                self.kernel = self.kernel.with_params(l, a)
                try:
                    self.fit(X, y)
                except np.linalg.LinAlgError:  # pragma: no cover - guard
                    continue
                lml = self.log_marginal_likelihood()
                if lml > best_lml:
                    best_lml, best_kernel = lml, self.kernel
        self.kernel = best_kernel
        return self.fit(X, y)
