"""Nested discrete-continuous Bayesian optimization (§3.3, ref [24]).

"Autonomous frameworks leverage nested discrete-continuous Bayesian
optimization strategies that reflect real-world experimental constraints
... improving optimization efficiency by structuring search spaces to
reflect hardware constraints."

The outer loop is a UCB bandit over discrete chemistry combinations; the
inner loop is one continuous-space GP optimizer per visited combination.
This matches how fluidic SDL hardware actually works: switching chemistry
(outer) is expensive, sweeping process knobs (inner) is cheap — and it is
what lets a campaign navigate a 10^13-condition space (E12).
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional

import numpy as np

from repro.labsci.landscapes import ParameterSpace
from repro.methods.baselines import AskTellOptimizer
from repro.methods.bayesopt import BayesianOptimizer


class _ComboArm:
    """Bandit statistics + inner optimizer for one discrete combination."""

    def __init__(self, inner: BayesianOptimizer) -> None:
        self.inner = inner
        self.pulls = 0
        self.best_value = -math.inf
        self.sum_value = 0.0

    @property
    def mean_value(self) -> float:
        return self.sum_value / self.pulls if self.pulls else 0.0


class NestedBayesianOptimizer(AskTellOptimizer):
    """UCB-over-chemistries outer loop, per-chemistry GP inner loop.

    Parameters
    ----------
    space:
        Mixed parameter space; its discrete dims define the arms.
    rng:
        Random stream.
    exploration:
        UCB exploration weight on the outer bandit.
    arm_subset:
        Newly considered arms per round: the full cross product can be
        huge (8*8*4*5 = 1280 for quantum dots), so unvisited arms are
        sampled rather than enumerated.
    inner_kwargs:
        Passed to each per-combo :class:`BayesianOptimizer`.
    switch_penalty:
        Subtracted from the UCB score of arms other than the current one,
        reflecting the hardware cost of switching chemistry.
    """

    def __init__(self, space: ParameterSpace, rng: np.random.Generator, *,
                 exploration: float = 0.4, arm_subset: int = 24,
                 switch_penalty: float = 0.02,
                 inner_kwargs: Optional[dict[str, Any]] = None) -> None:
        super().__init__(space)
        if not space.discrete:
            raise ValueError(
                "NestedBayesianOptimizer needs at least one discrete dim; "
                "use BayesianOptimizer for purely continuous spaces")
        self.rng = rng
        self.exploration = exploration
        self.arm_subset = arm_subset
        self.switch_penalty = switch_penalty
        self._inner_kwargs = dict(inner_kwargs or {})
        self._inner_kwargs.setdefault("n_init", 4)
        self._inner_kwargs.setdefault("n_candidates", 256)
        # Inner surrogates ride the fast path: observations stream in as
        # rank-1 updates and grid refits reuse the cached distance matrix
        # (see repro.methods.gp).  Each arm sees only its share of the
        # budget, so the hygiene refactorization can be sparse.
        self._inner_kwargs.setdefault("full_refit_every", 50)
        self._arms: dict[tuple[str, ...], _ComboArm] = {}
        self._current_arm: Optional[tuple[str, ...]] = None
        # The continuous-only subspace shared by all inner optimizers.
        self._cont_space = ParameterSpace(space.continuous)

    # -- arm management ------------------------------------------------------------

    def _get_arm(self, key: tuple[str, ...]) -> _ComboArm:
        arm = self._arms.get(key)
        if arm is None:
            inner = BayesianOptimizer(self._cont_space, self.rng,
                                      **self._inner_kwargs)
            arm = _ComboArm(inner)
            self._arms[key] = arm
        return arm

    def _candidate_arms(self) -> list[tuple[str, ...]]:
        """Visited arms plus a random sample of fresh chemistry combos."""
        fresh = []
        for _ in range(self.arm_subset):
            params = self.space.sample(self.rng)
            key = self.space.discrete_key(params)
            if key not in self._arms:
                fresh.append(key)
        return list(self._arms) + fresh

    def _ucb(self, key: tuple[str, ...], total_pulls: int) -> float:
        arm = self._arms.get(key)
        if arm is None or arm.pulls == 0:
            # Prior draw for unvisited chemistries, calibrated to the
            # heavy-tailed combo-quality prior (most chemistries are
            # mediocre): optimistic enough to keep exploring early, not
            # so optimistic that a good arm never gets exploited.
            prior = 0.15 + 0.35 * float(self.rng.random())
            if arm is not None and arm.best_value > float("-inf"):
                # Donated cross-site knowledge about this chemistry: an
                # unvisited-but-vouched-for arm jumps the queue (M9).
                return max(prior, arm.best_value)
            return prior
        bonus = self.exploration * math.sqrt(
            math.log(max(total_pulls, 2)) / arm.pulls)
        score = arm.best_value + bonus
        if key != self._current_arm:
            score -= self.switch_penalty
        return score

    # -- ask/tell ---------------------------------------------------------------------

    def ask(self) -> dict[str, Any]:
        total = sum(a.pulls for a in self._arms.values())
        arms = self._candidate_arms()
        key = max(arms, key=lambda k: self._ucb(k, total))
        self._current_arm = key
        arm = self._get_arm(key)
        cont = arm.inner.ask()
        return self.space.with_discrete(key, cont)

    def tell(self, params: Mapping[str, Any], objective: float) -> None:
        super().tell(params, objective)
        key = self.space.discrete_key(params)
        arm = self._get_arm(key)
        arm.pulls += 1
        arm.sum_value += objective
        arm.best_value = max(arm.best_value, objective)
        cont = {d.name: params[d.name] for d in self.space.continuous}
        arm.inner.tell(cont, objective)

    def absorb(self, params: Mapping[str, Any], objective: float) -> None:
        """Donate an external observation to the matching arm."""
        key = self.space.discrete_key(params)
        arm = self._get_arm(key)
        arm.best_value = max(arm.best_value, objective)
        cont = {d.name: params[d.name] for d in self.space.continuous}
        arm.inner.absorb(cont, objective)

    # -- introspection -----------------------------------------------------------------------

    @property
    def n_arms_visited(self) -> int:
        return sum(1 for a in self._arms.values() if a.pulls > 0)

    def arm_summary(self) -> list[tuple[tuple[str, ...], int, float]]:
        """(combo, pulls, best) per visited arm, best first."""
        rows = [(k, a.pulls, a.best_value)
                for k, a in self._arms.items() if a.pulls > 0]
        return sorted(rows, key=lambda r: -r[2])
