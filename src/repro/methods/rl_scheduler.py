"""Tabular Q-learning for dynamic experimental scheduling (§3.3).

"Reinforcement learning for dynamic experimental scheduling."  The
scheduler learns which resource to route the next experiment to (fast/
cheap flow reactor vs. slow/accurate batch robot vs. HPC simulation) from
the campaign state (queue pressure, remaining budget, current confidence).
States and actions are deliberately small and discrete — tabular RL is
the right tool at lab scale, and it is fully deterministic given the RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SchedulingState:
    """Discretized campaign state.

    Attributes
    ----------
    queue_pressure:
        0 (idle) / 1 (moderate) / 2 (backed up).
    budget_phase:
        0 (early) / 1 (mid) / 2 (late) in the experiment budget.
    confidence:
        0 (no good candidates yet) / 1 (improving) / 2 (converged-ish).
    """

    queue_pressure: int
    budget_phase: int
    confidence: int

    @staticmethod
    def discretize(queue_length: int, frac_budget_used: float,
                   recent_improvement: float) -> "SchedulingState":
        q = 0 if queue_length == 0 else (1 if queue_length <= 3 else 2)
        b = 0 if frac_budget_used < 0.33 else (
            1 if frac_budget_used < 0.66 else 2)
        c = 2 if recent_improvement < 0.005 else (
            1 if recent_improvement < 0.05 else 0)
        return SchedulingState(q, b, c)


@dataclass(frozen=True)
class MultiTenantSchedulingState:
    """Discretized facility state for multi-tenant slot routing.

    The service-level analogue of :class:`SchedulingState`: instead of
    one campaign's queue/budget/confidence, it captures the whole
    facility's backlog, how uneven the fair-share virtual times have
    become, and how close the nearest deadline is.  Kept deliberately
    tiny (3 x 3 x 3 states) so the tabular agent converges within a
    single busy service run.

    Attributes
    ----------
    backlog:
        0 (drained) / 1 (busy) / 2 (saturated) total queued campaigns.
    imbalance:
        0 (fair) / 1 (drifting) / 2 (skewed) virtual-time spread.
    urgency:
        0 (no deadline near) / 1 (deadline approaching) / 2 (imminent).
    """

    backlog: int
    imbalance: int
    urgency: int

    @staticmethod
    def discretize(total_backlog: int, fairness_debt: float,
                   min_deadline_slack_s: float,
                   ) -> "MultiTenantSchedulingState":
        b = 0 if total_backlog == 0 else (1 if total_backlog <= 16 else 2)
        i = 0 if fairness_debt < 1.0 else (1 if fairness_debt < 8.0 else 2)
        u = 2 if min_deadline_slack_s < 600.0 else (
            1 if min_deadline_slack_s < 3600.0 else 0)
        return MultiTenantSchedulingState(b, i, u)


class QLearningScheduler:
    """Epsilon-greedy tabular Q-learning over (state, action).

    Parameters
    ----------
    actions:
        The routing choices, e.g. ``("flow", "batch", "simulate")``.
    rng:
        Random stream for exploration.
    alpha / gamma / epsilon:
        Learning rate, discount, exploration rate; ``epsilon`` decays by
        ``epsilon_decay`` per update.
    """

    def __init__(self, actions: Sequence[str], rng: np.random.Generator, *,
                 alpha: float = 0.2, gamma: float = 0.9,
                 epsilon: float = 0.3, epsilon_decay: float = 0.995,
                 min_epsilon: float = 0.02) -> None:
        if not actions:
            raise ValueError("need at least one action")
        self.actions = tuple(actions)
        self.rng = rng
        self.alpha = alpha
        self.gamma = gamma
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.min_epsilon = min_epsilon
        self._q: dict[tuple[Hashable, str], float] = {}
        self.stats = {"updates": 0, "explorations": 0}

    def q(self, state: Hashable, action: str) -> float:
        return self._q.get((state, action), 0.0)

    def choose(self, state: Hashable,
               available: Optional[Sequence[str]] = None) -> str:
        """Epsilon-greedy action choice (ties broken at random)."""
        options = self.actions if available is None else tuple(available)
        if not options:
            raise ValueError("no available actions")
        if self.rng.random() < self.epsilon:
            self.stats["explorations"] += 1
            return str(self.rng.choice(list(options)))
        values = np.array([self.q(state, a) for a in options])
        best = np.flatnonzero(values == values.max())
        return options[int(self.rng.choice(best))]

    def update(self, state: Hashable, action: str, reward: float,
               next_state: Optional[Hashable] = None) -> None:
        """One-step Q update; pass ``next_state=None`` for terminal steps."""
        self.stats["updates"] += 1
        future = 0.0
        if next_state is not None:
            future = max(self.q(next_state, a) for a in self.actions)
        old = self.q(state, action)
        self._q[(state, action)] = old + self.alpha * (
            reward + self.gamma * future - old)
        self.epsilon = max(self.min_epsilon,
                           self.epsilon * self.epsilon_decay)

    def policy(self, state: Hashable) -> str:
        """Greedy action (no exploration) — for inspection and tests."""
        values = [self.q(state, a) for a in self.actions]
        return self.actions[int(np.argmax(values))]

    def table_size(self) -> int:
        return len(self._q)
