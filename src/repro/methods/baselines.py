"""Baseline experiment-selection strategies.

All optimizers in :mod:`repro.methods` share the ask/tell protocol:

- ``ask() -> params`` proposes the next experiment;
- ``tell(params, objective)`` reports its (noisy) outcome;
- ``best`` returns the incumbent ``(objective, params)``.

The baselines here are what the paper's "traditional approaches" would do:
uniform random search, a fixed full-factorial grid, and Latin-hypercube
style space filling.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.labsci.landscapes import ContinuousDim, ParameterSpace


class AskTellOptimizer:
    """Shared bookkeeping for ask/tell strategies."""

    def __init__(self, space: ParameterSpace) -> None:
        self.space = space
        self.history: list[tuple[dict[str, Any], float]] = []

    def tell(self, params: Mapping[str, Any], objective: float) -> None:
        self.history.append((dict(params), float(objective)))

    @property
    def n_observed(self) -> int:
        return len(self.history)

    @property
    def best(self) -> Optional[tuple[float, dict[str, Any]]]:
        if not self.history:
            return None
        params, value = max(self.history, key=lambda h: h[1])
        return value, params

    def best_trajectory(self) -> list[float]:
        """Running best objective after each observation."""
        out, cur = [], -np.inf
        for _, v in self.history:
            cur = max(cur, v)
            out.append(cur)
        return out

    def ask(self) -> dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError


class RandomSearch(AskTellOptimizer):
    """Uniform random sampling of the space."""

    def __init__(self, space: ParameterSpace,
                 rng: np.random.Generator) -> None:
        super().__init__(space)
        self.rng = rng

    def ask(self) -> dict[str, Any]:
        return self.space.sample(self.rng)


class GridSearch(AskTellOptimizer):
    """Full-factorial grid, visited in deterministic order.

    ``points_per_dim`` grid levels per continuous dimension crossed with
    every discrete combination.  The grid wraps around when exhausted.
    """

    def __init__(self, space: ParameterSpace, points_per_dim: int = 5) -> None:
        super().__init__(space)
        if points_per_dim < 2:
            raise ValueError("points_per_dim must be >= 2")
        self.points_per_dim = points_per_dim
        self._grid = self._build()
        self._cursor = 0

    def _build(self) -> list[dict[str, Any]]:
        levels: dict[str, list[Any]] = {}
        for d in self.space.dims:
            if isinstance(d, ContinuousDim):
                levels[d.name] = list(
                    np.linspace(d.low, d.high, self.points_per_dim))
            else:
                levels[d.name] = list(d.choices)
        grid: list[dict[str, Any]] = [{}]
        for name, values in levels.items():
            grid = [dict(g, **{name: v}) for g in grid for v in values]
        return grid

    @property
    def grid_size(self) -> int:
        return len(self._grid)

    def ask(self) -> dict[str, Any]:
        params = self._grid[self._cursor % len(self._grid)]
        self._cursor += 1
        return dict(params)


class LatinHypercube(AskTellOptimizer):
    """Stratified space-filling sampler.

    Continuous dims get shuffled-stratum samples per block of ``block``
    asks; discrete dims cycle through their choices in shuffled order.
    """

    def __init__(self, space: ParameterSpace, rng: np.random.Generator,
                 block: int = 16) -> None:
        super().__init__(space)
        self.rng = rng
        self.block = block
        self._queue: list[dict[str, Any]] = []

    def _refill(self) -> None:
        n = self.block
        columns: dict[str, list[Any]] = {}
        for d in self.space.dims:
            if isinstance(d, ContinuousDim):
                strata = (np.arange(n) + self.rng.random(n)) / n
                self.rng.shuffle(strata)
                columns[d.name] = [d.denormalize(s) for s in strata]
            else:
                reps = [d.choices[i % len(d.choices)] for i in range(n)]
                self.rng.shuffle(reps)
                columns[d.name] = reps
        self._queue = [
            {name: col[i] for name, col in columns.items()}
            for i in range(n)]

    def ask(self) -> dict[str, Any]:
        if not self._queue:
            self._refill()
        return self._queue.pop()
