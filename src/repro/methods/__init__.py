"""Traditional scientific ML methods orchestrated by AI agents (§3.3).

"Modern LLM-based agents emerge as orchestrators coordinating specialized
techniques: Gaussian processes for uncertainty quantification, Bayesian
optimization for sample efficiency, and reinforcement learning for dynamic
control."  This package is those specialized techniques, implemented from
scratch on numpy/scipy:

- :mod:`repro.methods.kernels`, :mod:`repro.methods.gp` — GP regression.
- :mod:`repro.methods.acquisition` — EI / UCB / Thompson sampling.
- :mod:`repro.methods.bayesopt` — Bayesian optimization over mixed spaces.
- :mod:`repro.methods.nested` — nested discrete-continuous BO (ref [24]).
- :mod:`repro.methods.transfer` — cross-laboratory transfer learning.
- :mod:`repro.methods.rl_scheduler` — Q-learning for dynamic scheduling.
- :mod:`repro.methods.baselines` — random/grid/LHS comparison points.
"""

from repro.methods.acquisition import (expected_improvement,
                                       probability_of_improvement,
                                       thompson_sample, upper_confidence_bound)
from repro.methods.baselines import GridSearch, LatinHypercube, RandomSearch
from repro.methods.bayesopt import BayesianOptimizer
from repro.methods.gp import GaussianProcess
from repro.methods.kernels import Matern52, RBF
from repro.methods.nested import NestedBayesianOptimizer
from repro.methods.rl_scheduler import QLearningScheduler
from repro.methods.transfer import TransferAdapter

__all__ = [
    "BayesianOptimizer",
    "GaussianProcess",
    "GridSearch",
    "LatinHypercube",
    "Matern52",
    "NestedBayesianOptimizer",
    "QLearningScheduler",
    "RBF",
    "RandomSearch",
    "TransferAdapter",
    "expected_improvement",
    "probability_of_improvement",
    "thompson_sample",
    "upper_confidence_bound",
]
