"""Bayesian optimization over mixed parameter spaces.

The workhorse sample-efficient optimizer: a GP surrogate on the space's
encoded vectors (normalized continuous + one-hot discrete) and an
acquisition maximized over a random candidate pool.  For spaces with large
discrete structure, prefer
:class:`~repro.methods.nested.NestedBayesianOptimizer`.

The surrogate is kept in sync *incrementally*: new observations (local
tells and donated ``absorb``-ed points alike) reach the GP through
:meth:`~repro.methods.gp.GaussianProcess.observe` — an O(n²) rank-1
update — instead of an O(n³) refit per ask.  Hyperparameter grid refits
(every ``refit_every`` asks) and a periodic ``full_refit_every`` knob
rebuild the factorization from scratch for numerical hygiene.

The ask path is fully batched: candidate pools come from
:meth:`ParameterSpace.sample_batch` as a raw ``(n, d)`` matrix, incumbent
jitter is one vectorized normal draw, and encoding goes through
:meth:`ParameterSpace.encode_raw_batch` — zero per-candidate Python
iteration between candidate generation and the acquisition argmax.  The
pre-vectorization scalar path is frozen verbatim in
:mod:`repro.perf.legacy_ask`; the ``bo_ask`` perf workload gates the
speedup and witnesses distributional equivalence of the two samplers.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.labsci.landscapes import ContinuousDim, ParameterSpace
from repro.methods.acquisition import score_candidates
from repro.methods.baselines import AskTellOptimizer
from repro.methods.gp import GaussianProcess
from repro.methods.kernels import Matern52


class BayesianOptimizer(AskTellOptimizer):
    """GP-based ask/tell optimizer.

    Parameters
    ----------
    space:
        The mixed parameter space.
    rng:
        Random stream (candidate pools + Thompson draws).
    acquisition:
        "ei" (default), "ucb", "pi", or "thompson".
    n_init:
        Random exploration before the surrogate switches on.
    n_candidates:
        Candidate pool size per ask.
    refit_every:
        Hyperparameter re-fit cadence (grid LML search is not free).
    full_refit_every:
        Every this many incremental surrogate updates, rebuild the
        Cholesky factor from scratch instead of extending it — bounds
        floating-point drift of the rank-1 chain.  The grid refit already
        refactors, so this only matters when ``refit_every`` is large.
    """

    def __init__(self, space: ParameterSpace, rng: np.random.Generator, *,
                 acquisition: str = "ei", n_init: int = 8,
                 n_candidates: int = 512, noise: float = 0.02,
                 refit_every: int = 10,
                 full_refit_every: int = 50) -> None:
        super().__init__(space)
        self.rng = rng
        self.acquisition = acquisition
        self.n_init = n_init
        self.n_candidates = n_candidates
        self.refit_every = refit_every
        self.full_refit_every = full_refit_every
        self.gp = GaussianProcess(kernel=Matern52(lengthscale=0.3),
                                  noise=noise)
        self._since_refit = 0
        self._since_full_refit = 0
        #: Extra observations donated by other sites (transfer learning).
        self._external: list[tuple[dict[str, Any], float]] = []
        # Continuous-dim geometry for the batched incumbent jitter.
        self._cont_cols = np.asarray(
            [j for j, d in enumerate(space.dims)
             if isinstance(d, ContinuousDim)], dtype=np.intp)
        self._cont_lows = np.asarray([d.low for d in space.continuous])
        self._cont_highs = np.asarray([d.high for d in space.continuous])
        # Observations in arrival order (tells and absorbs interleaved):
        # the GP is conditioned on this sequence, with _n_synced marking
        # how many of them it has already seen.
        self._arrivals: list[tuple[dict[str, Any], float]] = []
        self._n_synced = 0

    # -- knowledge integration hooks -----------------------------------------------

    def tell(self, params: Mapping[str, Any], objective: float) -> None:
        super().tell(params, objective)
        self._arrivals.append((dict(params), float(objective)))

    def absorb(self, params: Mapping[str, Any], objective: float) -> None:
        """Add an observation from elsewhere (does not count as ours)."""
        self._external.append((dict(params), float(objective)))
        self._arrivals.append((dict(params), float(objective)))

    def _all_observations(self) -> list[tuple[dict[str, Any], float]]:
        return self.history + self._external

    # -- surrogate maintenance ---------------------------------------------------------

    def _encode_arrivals(self) -> tuple[np.ndarray, np.ndarray]:
        X = self.space.encode_batch([p for p, _ in self._arrivals])
        y = np.array([v for _, v in self._arrivals])
        return X, y

    def _sync_surrogate(self) -> None:
        """Bring the GP up to date with the newest observations.

        Grid refits (every ``refit_every`` asks) go through the cached
        distance grid; between them, new points stream in as rank-1
        updates, with a scratch refactorization every
        ``full_refit_every`` updates for numerical hygiene.
        """
        self._since_refit += 1
        if self._since_refit >= self.refit_every or self.gp.n_observations == 0:
            X, y = self._encode_arrivals()
            self.gp.fit_hyperparameters(X, y)
            self._n_synced = len(self._arrivals)
            self._since_refit = 0
            self._since_full_refit = 0
            return
        pending = self._arrivals[self._n_synced:]
        if (self._since_full_refit + len(pending) >= self.full_refit_every
                and pending):
            X, y = self._encode_arrivals()
            self.gp.fit(X, y)
            self._n_synced = len(self._arrivals)
            self._since_full_refit = 0
            return
        X_new = self.space.encode_batch([p for p, _ in pending])
        for row, (_, value) in zip(X_new, pending):
            self.gp.observe(row, value)
        self._n_synced = len(self._arrivals)
        self._since_full_refit += len(pending)

    # -- ask/tell ----------------------------------------------------------------------

    #: Incumbent-jitter schedule: 8 copies at each relative scale.
    _JITTER_SCALES = (0.02, 0.05, 0.1)
    _JITTER_COPIES = 8

    def ask(self) -> dict[str, Any]:
        observations = self._all_observations()
        if len(observations) < self.n_init:
            return self.space.sample(self.rng)
        self._sync_surrogate()
        y_best = max(v for _, v in observations)
        raw = self.space.sample_batch(self.rng, self.n_candidates)
        # Local exploitation: jitter the incumbent into the pool.
        if self.best is not None:
            _, inc = self.best
            raw = np.concatenate([raw, self._perturb_batch(inc)], axis=0)
        Xc = self.space.encode_raw_batch(raw)
        scores = score_candidates(self.acquisition, self.gp, Xc,
                                  best=float(y_best), rng=self.rng)
        return self.space.decode_batch(raw[int(np.argmax(scores))])[0]

    def _perturb_batch(self, params: Mapping[str, Any]) -> np.ndarray:
        """All jittered incumbent copies as raw rows, from one normal draw."""
        scales = np.repeat(np.asarray(self._JITTER_SCALES),
                           self._JITTER_COPIES)
        out = np.tile(self.space.raw_point(params), (scales.size, 1))
        if self._cont_cols.size:
            spans = self._cont_highs - self._cont_lows
            step = self.rng.standard_normal((scales.size,
                                             self._cont_cols.size))
            out[:, self._cont_cols] = np.clip(
                out[:, self._cont_cols] + step * (spans * scales[:, None]),
                self._cont_lows, self._cont_highs)
        return out

    # -- introspection ---------------------------------------------------------------------

    def posterior_at(self, params: Mapping[str, Any]) -> tuple[float, float]:
        """Surrogate (mean, std) at a point — used by verification."""
        if len(self._arrivals) < 2:
            return 0.0, float("inf")
        X, y = self._encode_arrivals()
        self.gp.fit(X, y)
        self._n_synced = len(self._arrivals)
        self._since_full_refit = 0
        mean, std = self.gp.predict(
            self.space.encode(dict(params))[None, :])
        return float(mean[0]), float(std[0])
