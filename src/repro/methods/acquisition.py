"""Acquisition functions for Bayesian optimization (maximization form).

All acquisitions are vectorized over the candidate axis: they take
``(n,)`` posterior mean/std arrays and return ``(n,)`` scores with no
per-candidate Python iteration — the contract the batched
``BayesianOptimizer.ask`` fast path relies on.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

#: Posterior-std floor for improvement-based acquisitions.  The GP
#: reports std == 0 exactly at observed points (and can numerically
#: round to 0 nearby); dividing by it would yield NaN/inf scores that
#: poison the acquisition argmax.  Flooring makes such points score
#: ~0 improvement instead, which is the correct limit.
STD_FLOOR = 1e-12


def expected_improvement(mean: np.ndarray, std: np.ndarray, best: float,
                         xi: float = 0.01) -> np.ndarray:
    """EI over the incumbent ``best`` with exploration jitter ``xi``."""
    std = np.maximum(std, STD_FLOOR)
    z = (mean - best - xi) / std
    return (mean - best - xi) * norm.cdf(z) + std * norm.pdf(z)


def upper_confidence_bound(mean: np.ndarray, std: np.ndarray,
                           beta: float = 2.0) -> np.ndarray:
    """GP-UCB: mean + beta * std."""
    return mean + beta * std


def probability_of_improvement(mean: np.ndarray, std: np.ndarray,
                               best: float, xi: float = 0.01) -> np.ndarray:
    """P(f(x) > best + xi)."""
    std = np.maximum(std, STD_FLOOR)
    return norm.cdf((mean - best - xi) / std)


def thompson_sample(gp, X: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
    """One joint posterior draw over the candidate set."""
    return gp.sample_posterior(X, rng, n_samples=1)[0]


ACQUISITIONS = {
    "ei": "expected_improvement",
    "ucb": "upper_confidence_bound",
    "pi": "probability_of_improvement",
    "thompson": "thompson_sample",
}


def score_candidates(name: str, gp, X: np.ndarray, best: float,
                     rng: np.random.Generator, *, xi: float = 0.01,
                     beta: float = 2.0) -> np.ndarray:
    """Dispatch an acquisition by name over a candidate matrix."""
    if name == "thompson":
        return thompson_sample(gp, X, rng)
    mean, std = gp.predict(X)
    if name == "ei":
        return expected_improvement(mean, std, best, xi=xi)
    if name == "ucb":
        return upper_confidence_bound(mean, std, beta=beta)
    if name == "pi":
        return probability_of_improvement(mean, std, best, xi=xi)
    raise ValueError(f"unknown acquisition {name!r}; known: "
                     f"{sorted(ACQUISITIONS)}")
