"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

import numpy as np


def _sqdist(a: np.ndarray, b: np.ndarray, lengthscale: float) -> np.ndarray:
    """Pairwise squared Euclidean distance of scaled inputs.

    Computed via the expansion ||x-y||^2 = ||x||^2 + ||y||^2 - 2 x.y,
    vectorized over both point sets (guide idiom: no Python loops).
    """
    a = np.atleast_2d(a) / lengthscale
    b = np.atleast_2d(b) / lengthscale
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    d2 = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(d2, 0.0)


class RBF:
    """Squared-exponential kernel: amp^2 * exp(-d^2 / (2 l^2))."""

    def __init__(self, lengthscale: float = 0.2, amplitude: float = 1.0) -> None:
        if lengthscale <= 0 or amplitude <= 0:
            raise ValueError("lengthscale and amplitude must be > 0")
        self.lengthscale = float(lengthscale)
        self.amplitude = float(amplitude)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d2 = _sqdist(a, b, self.lengthscale)
        return self.amplitude ** 2 * np.exp(-0.5 * d2)

    def with_params(self, lengthscale: float, amplitude: float) -> "RBF":
        return RBF(lengthscale, amplitude)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RBF(l={self.lengthscale:.4g}, a={self.amplitude:.4g})"


class Matern52:
    """Matern-5/2 kernel — rougher sample paths than RBF."""

    def __init__(self, lengthscale: float = 0.2, amplitude: float = 1.0) -> None:
        if lengthscale <= 0 or amplitude <= 0:
            raise ValueError("lengthscale and amplitude must be > 0")
        self.lengthscale = float(lengthscale)
        self.amplitude = float(amplitude)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.sqrt(_sqdist(a, b, self.lengthscale))
        s5d = np.sqrt(5.0) * d
        return (self.amplitude ** 2
                * (1.0 + s5d + (5.0 / 3.0) * d * d) * np.exp(-s5d))

    def with_params(self, lengthscale: float, amplitude: float) -> "Matern52":
        return Matern52(lengthscale, amplitude)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Matern52(l={self.lengthscale:.4g}, a={self.amplitude:.4g})"
