"""Covariance kernels for Gaussian-process regression.

Both kernels are *stationary*: covariance depends only on the pairwise
distance between inputs.  That buys two fast paths the surrogate stack
leans on (see :mod:`repro.perf`):

- :meth:`_Stationary.diag` — the self-covariance of any point is just
  ``amplitude**2``, so callers that only need a diagonal (``predict``'s
  prior variance) never build an m×m matrix;
- :meth:`_Stationary.from_unit_sqdist` — the kernel matrix for any
  lengthscale is an elementwise function of the *unit-lengthscale*
  squared-distance matrix, so a hyperparameter grid computes the O(n²·d)
  distance expansion once and derives each (lengthscale, amplitude)
  candidate by cheap elementwise ops.

Amplitude enters as an exact final scaling (``amplitude**2 * base``), so
the direct and derived paths agree bit-for-bit in the amplitude factor.
"""

from __future__ import annotations

import numpy as np


def _sqdist(a: np.ndarray, b: np.ndarray, lengthscale: float = 1.0) -> np.ndarray:
    """Pairwise squared Euclidean distance of scaled inputs.

    Computed via the expansion ||x-y||^2 = ||x||^2 + ||y||^2 - 2 x.y,
    vectorized over both point sets (guide idiom: no Python loops).
    """
    a = np.atleast_2d(a) / lengthscale
    b = np.atleast_2d(b) / lengthscale
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    d2 = aa + bb - 2.0 * (a @ b.T)
    return np.maximum(d2, 0.0)


class _Stationary:
    """Shared machinery for stationary kernels (distance → covariance)."""

    __slots__ = ("lengthscale", "amplitude")

    def __init__(self, lengthscale: float = 0.2, amplitude: float = 1.0) -> None:
        if lengthscale <= 0 or amplitude <= 0:
            raise ValueError("lengthscale and amplitude must be > 0")
        self.lengthscale = float(lengthscale)
        self.amplitude = float(amplitude)

    def _base(self, d2: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Unit-amplitude covariance from squared scaled distances."""
        raise NotImplementedError

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.amplitude ** 2 * self._base(_sqdist(a, b, self.lengthscale))

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Self-covariance k(x, x) per row of ``X`` — without the matrix.

        Stationary kernels have constant prior variance, so this is an
        O(m) fill instead of the O(m²·d) matrix ``np.diag(k(X, X))``
        would cost.
        """
        X = np.atleast_2d(X)
        return np.full(X.shape[0], self.amplitude ** 2)

    def from_unit_sqdist(self, d2_unit: np.ndarray) -> np.ndarray:
        """Kernel matrix from a cached unit-lengthscale ``_sqdist`` matrix.

        ``d2_unit`` must be ``_sqdist(A, B, 1.0)``; the result equals
        ``self(A, B)`` up to floating-point rescaling order.  Grid
        searches use this to amortize one distance matrix across every
        (lengthscale, amplitude) candidate.
        """
        inv = 1.0 / (self.lengthscale * self.lengthscale)
        return self.amplitude ** 2 * self._base(d2_unit * inv)

    def with_params(self, lengthscale: float, amplitude: float):
        return type(self)(lengthscale, amplitude)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"{type(self).__name__}(l={self.lengthscale:.4g}, "
                f"a={self.amplitude:.4g})")


class RBF(_Stationary):
    """Squared-exponential kernel: amp^2 * exp(-d^2 / (2 l^2))."""

    __slots__ = ()

    def _base(self, d2: np.ndarray) -> np.ndarray:
        return np.exp(-0.5 * d2)


class Matern52(_Stationary):
    """Matern-5/2 kernel — rougher sample paths than RBF."""

    __slots__ = ()

    def _base(self, d2: np.ndarray) -> np.ndarray:
        d = np.sqrt(d2)
        s5d = np.sqrt(5.0) * d
        return (1.0 + s5d + (5.0 / 3.0) * d * d) * np.exp(-s5d)
