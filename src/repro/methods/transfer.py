"""Cross-laboratory transfer learning (§3.3, milestone M9 substrate).

"Active transfer learning approaches enabling knowledge sharing between
laboratories."  The obstacle is the systematic calibration offset between
sites (modelled in :class:`repro.labsci.perovskite.PerovskiteLandscape`):
raw foreign observations are biased.  The :class:`TransferAdapter`
estimates a per-source affine correction from co-observed (or nearby)
conditions and rescales donations before feeding them to the local
optimizer.

Offset estimation is the adapter's hot path (federated campaigns call it
once per sharing round per source): encoded observations are kept in
incrementally-grown arrays and the neighbor search runs as one vectorized
distance computation over all donations, instead of re-stacking the local
history and looping donation-by-donation.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.labsci.landscapes import ParameterSpace


class _Donations:
    """Per-source donation store with an incrementally-built matrix."""

    __slots__ = ("values", "params", "_rows", "_X")

    def __init__(self) -> None:
        self.values: list[float] = []
        self.params: list[dict[str, Any]] = []
        self._rows: list[np.ndarray] = []
        self._X: Optional[np.ndarray] = None

    def append(self, x: np.ndarray, value: float,
               params: dict[str, Any]) -> None:
        self._rows.append(x)
        self.values.append(value)
        self.params.append(params)
        self._X = None

    @property
    def X(self) -> np.ndarray:
        if self._X is None:
            self._X = np.array(self._rows)
        return self._X

    def __len__(self) -> int:
        return len(self.values)


class TransferAdapter:
    """Bias-corrected observation sharing into one site's optimizer.

    Parameters
    ----------
    space:
        Shared parameter space.
    min_pairs:
        Paired observations needed before a correction is trusted; below
        this, donations pass through with a discount weight instead.
    neighbor_scale:
        Normalized-distance radius within which two observations count as
        "the same condition" for offset estimation.
    """

    def __init__(self, space: ParameterSpace, min_pairs: int = 3,
                 neighbor_scale: float = 0.15) -> None:
        self.space = space
        self.min_pairs = min_pairs
        self.neighbor_scale = neighbor_scale
        self._local_rows: list[np.ndarray] = []
        self._local_values: list[float] = []
        self._local_X: Optional[np.ndarray] = None
        self._local_y: Optional[np.ndarray] = None
        self._foreign: dict[str, _Donations] = {}
        self.stats = {"received": 0, "corrected": 0, "passthrough": 0}

    # -- feeding the adapter ---------------------------------------------------------

    def observe_local(self, params: Mapping[str, Any], value: float) -> None:
        self._local_rows.append(self.space.encode(params))
        self._local_values.append(float(value))
        self._local_X = None
        self._local_y = None

    def receive(self, source: str, params: Mapping[str, Any],
                value: float) -> None:
        """Record a donation from another site (raw, uncorrected)."""
        self.stats["received"] += 1
        store = self._foreign.get(source)
        if store is None:
            store = self._foreign[source] = _Donations()
        store.append(self.space.encode(params), float(value), dict(params))

    def _local_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._local_X is None:
            self._local_X = np.array(self._local_rows)
            self._local_y = np.array(self._local_values)
        return self._local_X, self._local_y

    # -- offset estimation ---------------------------------------------------------------

    def _estimate_offset(self, source: str) -> Optional[float]:
        """Mean (local - foreign) over near-coincident condition pairs."""
        donations = self._foreign.get(source)
        if not donations or not self._local_rows:
            return None
        local_X, local_y = self._local_arrays()
        # One vectorized (n_local, n_donations) distance computation in
        # place of a Python loop of per-donation norms.
        diff = local_X[:, None, :] - donations.X[None, :, :]
        near = np.linalg.norm(diff, axis=2) < self.neighbor_scale
        deltas = []
        for j, fy in enumerate(donations.values):
            mask = near[:, j]
            if mask.any():
                deltas.append(float(np.mean(local_y[mask])) - fy)
        if len(deltas) < self.min_pairs:
            return None
        return float(np.median(deltas))

    # -- the output: corrected donations ----------------------------------------------------

    def corrected_donations(self, source: str
                            ) -> list[tuple[dict[str, Any], float]]:
        """Donations from ``source`` ready for ``optimizer.absorb``.

        With a trusted offset estimate the correction is applied exactly;
        otherwise values pass through unchanged (the bandit/GP treats
        them as weak evidence — better than nothing, per M9's goal of
        reducing required experiments).
        """
        donations = self._foreign.get(source)
        if donations is None:
            return []
        offset = self._estimate_offset(source)
        out = []
        for value, params in zip(donations.values, donations.params):
            if offset is not None:
                self.stats["corrected"] += 1
                out.append((params, value + offset))
            else:
                self.stats["passthrough"] += 1
                out.append((params, value))
        return out

    def all_corrected(self) -> list[tuple[dict[str, Any], float]]:
        out = []
        for source in sorted(self._foreign):
            out.extend(self.corrected_donations(source))
        return out

    def offset_estimates(self) -> dict[str, Optional[float]]:
        return {s: self._estimate_offset(s) for s in sorted(self._foreign)}
