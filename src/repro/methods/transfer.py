"""Cross-laboratory transfer learning (§3.3, milestone M9 substrate).

"Active transfer learning approaches enabling knowledge sharing between
laboratories."  The obstacle is the systematic calibration offset between
sites (modelled in :class:`repro.labsci.perovskite.PerovskiteLandscape`):
raw foreign observations are biased.  The :class:`TransferAdapter`
estimates a per-source affine correction from co-observed (or nearby)
conditions and rescales donations before feeding them to the local
optimizer.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.labsci.landscapes import ParameterSpace


class TransferAdapter:
    """Bias-corrected observation sharing into one site's optimizer.

    Parameters
    ----------
    space:
        Shared parameter space.
    min_pairs:
        Paired observations needed before a correction is trusted; below
        this, donations pass through with a discount weight instead.
    neighbor_scale:
        Normalized-distance radius within which two observations count as
        "the same condition" for offset estimation.
    """

    def __init__(self, space: ParameterSpace, min_pairs: int = 3,
                 neighbor_scale: float = 0.15) -> None:
        self.space = space
        self.min_pairs = min_pairs
        self.neighbor_scale = neighbor_scale
        self._local: list[tuple[np.ndarray, float]] = []
        self._foreign: dict[str, list[tuple[np.ndarray, float, dict[str, Any]]]] = {}
        self.stats = {"received": 0, "corrected": 0, "passthrough": 0}

    # -- feeding the adapter ---------------------------------------------------------

    def observe_local(self, params: Mapping[str, Any], value: float) -> None:
        self._local.append((self.space.encode(params), float(value)))

    def receive(self, source: str, params: Mapping[str, Any],
                value: float) -> None:
        """Record a donation from another site (raw, uncorrected)."""
        self.stats["received"] += 1
        self._foreign.setdefault(source, []).append(
            (self.space.encode(params), float(value), dict(params)))

    # -- offset estimation ---------------------------------------------------------------

    def _estimate_offset(self, source: str) -> Optional[float]:
        """Mean (local - foreign) over near-coincident condition pairs."""
        donations = self._foreign.get(source, [])
        if not donations or not self._local:
            return None
        deltas = []
        local_X = np.array([x for x, _ in self._local])
        local_y = np.array([y for _, y in self._local])
        for fx, fy, _params in donations:
            d = np.linalg.norm(local_X - fx[None, :], axis=1)
            near = d < self.neighbor_scale
            if np.any(near):
                deltas.append(float(np.mean(local_y[near])) - fy)
        if len(deltas) < self.min_pairs:
            return None
        return float(np.median(deltas))

    # -- the output: corrected donations ----------------------------------------------------

    def corrected_donations(self, source: str
                            ) -> list[tuple[dict[str, Any], float]]:
        """Donations from ``source`` ready for ``optimizer.absorb``.

        With a trusted offset estimate the correction is applied exactly;
        otherwise values pass through unchanged (the bandit/GP treats
        them as weak evidence — better than nothing, per M9's goal of
        reducing required experiments).
        """
        donations = self._foreign.get(source, [])
        offset = self._estimate_offset(source)
        out = []
        for _x, value, params in donations:
            if offset is not None:
                self.stats["corrected"] += 1
                out.append((params, value + offset))
            else:
                self.stats["passthrough"] += 1
                out.append((params, value))
        return out

    def all_corrected(self) -> list[tuple[dict[str, Any], float]]:
        out = []
        for source in sorted(self._foreign):
            out.extend(self.corrected_donations(source))
        return out

    def offset_estimates(self) -> dict[str, Optional[float]]:
        return {s: self._estimate_offset(s) for s in sorted(self._foreign)}
