"""The evaluator agent: judges outcomes and steers the campaign.

Closes the autonomous loop: converts executor outcomes into optimizer
updates, tracks the incumbent, and decides when the campaign has
converged or should stop — the Evaluator role of the CellAgent-style
Planner/Executor/Evaluator decomposition the paper cites (§3.1, [35]).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.agents.base import Agent, AgentRuntime
from repro.agents.executor import ExperimentOutcome
from repro.agents.planner import PlannerAgent


class EvaluatorAgent(Agent):
    """Scores outcomes, updates the planner's optimizer, detects convergence.

    Parameters
    ----------
    planner:
        The planner whose optimizer learns from outcomes.
    target:
        Optional objective value that ends the campaign when reached.
    patience:
        Experiments without meaningful improvement before convergence is
        declared (``None`` disables early stopping).
    min_improvement:
        Improvement below this counts as "no progress".
    """

    role = "evaluator"

    def __init__(self, sim, name: str, site: str, runtime: AgentRuntime,
                 planner: PlannerAgent, *, target: Optional[float] = None,
                 patience: Optional[int] = None,
                 min_improvement: float = 1e-3, **kw: Any) -> None:
        super().__init__(sim, name, site, runtime, **kw)
        self.planner = planner
        self.target = target
        self.patience = patience
        self.min_improvement = min_improvement
        self.best_value: Optional[float] = None
        self.best_params: Optional[dict[str, Any]] = None
        self._stale = 0
        self.eval_stats = {"evaluated": 0, "accepted": 0, "discarded": 0}

    def evaluate(self, outcome: ExperimentOutcome) -> dict[str, Any]:
        """Digest one outcome; returns a verdict dict.

        Invalid outcomes are *discarded* (never fed to the optimizer —
        their parameters may not even encode) but still count toward
        patience: a campaign burning its budget on garbage is not
        progressing.
        """
        self.eval_stats["evaluated"] += 1
        if not outcome.valid or outcome.objective is None:
            self.eval_stats["discarded"] += 1
            self._stale += 1
            return {"accepted": False, "improved": False,
                    "converged": self._converged(), "reason": outcome.failure}

        self.eval_stats["accepted"] += 1
        self.planner.observe(outcome.plan.params, outcome.objective)
        improved = (self.best_value is None
                    or outcome.objective > self.best_value
                    + self.min_improvement)
        if self.best_value is None or outcome.objective > self.best_value:
            self.best_value = outcome.objective
            self.best_params = dict(outcome.plan.params)
        self._stale = 0 if improved else self._stale + 1
        return {"accepted": True, "improved": improved,
                "converged": self._converged(),
                "target_reached": (self.target is not None
                                   and self.best_value >= self.target)}

    def _converged(self) -> bool:
        return self.patience is not None and self._stale >= self.patience

    @property
    def recent_improvement(self) -> float:
        """Improvement signal for the RL scheduler's state."""
        if self.best_value is None or self._stale == 0:
            return 1.0
        return 1.0 / (1.0 + self._stale)
