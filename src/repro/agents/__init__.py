"""Stateful federated agents (the actors of §3.3).

- :mod:`repro.agents.base` — the agent runtime: mailboxes, message
  dispatch, heartbeats, crash/restart semantics.
- :mod:`repro.agents.llm` — the simulated LLM: a deterministic-seeded
  stochastic reasoner with realistic latency, token cost, and
  hallucination failure modes (see DESIGN.md substitutions).
- :mod:`repro.agents.planner` / :mod:`repro.agents.executor` /
  :mod:`repro.agents.evaluator` — the Planner/Executor/Evaluator roles
  (the CellAgent-style decomposition the paper cites).
- :mod:`repro.agents.lifecycle` — heartbeat supervision and automatic
  restart (fault-tolerant coordination, M3).
"""

from repro.agents.base import Agent, AgentRuntime, AgentState
from repro.agents.evaluator import EvaluatorAgent
from repro.agents.executor import ExecutorAgent, ExperimentOutcome
from repro.agents.lifecycle import Supervisor
from repro.agents.literature import (LiteratureAgent, PublishedResult,
                                     SyntheticLiterature)
from repro.agents.llm import LLMResponse, SimulatedLLM
from repro.agents.planner import ExperimentPlan, PlannerAgent

__all__ = [
    "Agent",
    "AgentRuntime",
    "AgentState",
    "EvaluatorAgent",
    "ExecutorAgent",
    "ExperimentOutcome",
    "ExperimentPlan",
    "LLMResponse",
    "LiteratureAgent",
    "PlannerAgent",
    "PublishedResult",
    "SimulatedLLM",
    "Supervisor",
    "SyntheticLiterature",
]
