"""The executor agent: turns plans into instrument operations.

The executor is the only agent that touches hardware.  It routes
canonical requests through the HAL, measures the product with the
assigned characterization instrument, and reports a structured
:class:`ExperimentOutcome`.  Crucially it is *honest about garbage*: a
plan whose parameters the hardware rejects (or that produces nothing
measurable) still consumed time and reagents and comes back as an invalid
outcome — exactly how a hallucinated recipe manifests in a real lab.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.agents.base import Agent, AgentRuntime
from repro.agents.planner import ExperimentPlan
from repro.instruments.base import Measurement, OperationRequest
from repro.instruments.errors import InstrumentError, InstrumentFault, OutOfSpec
from repro.instruments.hal import HardwareAbstractionLayer


@dataclass
class ExperimentOutcome:
    """What one executed plan produced."""

    plan: ExperimentPlan
    valid: bool
    objective: Optional[float] = None
    measurement: Optional[Measurement] = None
    sample: Any = None
    failure: str = ""
    started: float = 0.0
    finished: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished - self.started


class ExecutorAgent(Agent):
    """Executes plans: synthesize via HAL, then characterize.

    Parameters
    ----------
    hal:
        The hardware abstraction layer holding this site's instruments.
    synthesis_instrument:
        HAL name of the synthesis endpoint.
    characterization:
        Instrument object with a ``measure(sample)`` generator (routed
        directly: characterization of a fresh sample happens at the same
        bench).
    objective_key:
        Which measured value is the campaign objective.
    """

    role = "executor"

    def __init__(self, sim, name: str, site: str, runtime: AgentRuntime,
                 hal: HardwareAbstractionLayer, synthesis_instrument: str,
                 characterization, objective_key: str, **kw: Any) -> None:
        super().__init__(sim, name, site, runtime, **kw)
        self.hal = hal
        self.synthesis_instrument = synthesis_instrument
        self.characterization = characterization
        self.objective_key = objective_key
        self.exec_stats = {"executed": 0, "invalid": 0, "faults": 0}

    def execute(self, plan: ExperimentPlan):
        """Generator: run one plan end-to-end; returns an outcome.

        Instrument faults propagate as :class:`InstrumentFault` (the
        fault-tolerant coordinator decides what to do); *bad recipes* do
        not raise — they return ``valid=False`` outcomes.
        """
        started = self.sim.now
        self.exec_stats["executed"] += 1
        request = OperationRequest(operation=plan.instrument_op,
                                   params=dict(plan.params),
                                   requester=self.name)
        try:
            sample = yield from self.hal.execute(self.synthesis_instrument,
                                                 request)
        except OutOfSpec as exc:
            # Hardware interlock refused: no sample, small time already
            # spent; the "experiment" is invalid.
            self.exec_stats["invalid"] += 1
            return ExperimentOutcome(plan=plan, valid=False,
                                     failure=f"interlock: {exc}",
                                     started=started, finished=self.sim.now)
        except ValueError as exc:
            # Parameters outside the physical space (e.g. a confabulated
            # chemistry): the robot runs through the motions and produces
            # unusable residue.
            self.exec_stats["invalid"] += 1
            yield self.sim.timeout(60.0)  # wasted bench time
            return ExperimentOutcome(plan=plan, valid=False,
                                     failure=f"unphysical recipe: {exc}",
                                     started=started, finished=self.sim.now)
        except InstrumentFault:
            self.exec_stats["faults"] += 1
            raise

        measurement = yield from self.characterization.measure(
            sample, requester=self.name)
        objective = measurement.values.get(self.objective_key)
        if objective is None:
            self.exec_stats["invalid"] += 1
            return ExperimentOutcome(plan=plan, valid=False,
                                     measurement=measurement, sample=sample,
                                     failure=f"objective key "
                                             f"{self.objective_key!r} not "
                                             f"measured",
                                     started=started, finished=self.sim.now)
        return ExperimentOutcome(plan=plan, valid=True,
                                 objective=float(objective),
                                 measurement=measurement, sample=sample,
                                 started=started, finished=self.sim.now)
