"""Automated literature review as a campaign knowledge source (§3.1).

The paper flags that "the automation of literature review remains a
bottleneck, with frameworks that exhibit significant performance drops
during the literature review phases" [8].  This module models why: the
published record is a *biased, noisy* sample of reality.

:class:`SyntheticLiterature` generates a corpus of prior "papers" about a
landscape with two classic pathologies — **publication bias** (only
results above a quality bar get published) and **optimism bias**
(reported values exceed what replication yields).  The
:class:`LiteratureAgent` reviews the corpus and seeds an optimizer with
reported results; whether that helps or misleads depends on the corpus's
honesty — exactly the trade the E-tests quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import Landscape
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class PublishedResult:
    """One literature claim: a recipe and its reported outcome."""

    paper_id: str
    params: tuple[tuple[str, Any], ...]
    reported_value: float
    true_value: float  # hidden ground truth, for accounting only

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def inflation(self) -> float:
        return self.reported_value - self.true_value


class SyntheticLiterature:
    """A biased published record over one landscape.

    Parameters
    ----------
    landscape:
        The underlying truth the historical groups were probing.
    rng:
        Corpus generation stream.
    n_papers:
        Corpus size (after publication filtering).
    publication_quantile:
        Only attempts above this quantile of attempted outcomes get
        published (the file-drawer effect).
    optimism_bias:
        Mean fractional inflation of reported over replicable values.
    noise:
        Reporting noise standard deviation (fractional).
    """

    def __init__(self, landscape: "Landscape", rng: np.random.Generator, *,
                 n_papers: int = 40, publication_quantile: float = 0.5,
                 optimism_bias: float = 0.0, noise: float = 0.05) -> None:
        self.landscape = landscape
        self.optimism_bias = optimism_bias
        attempts = []
        for _ in range(max(n_papers * 4, 40)):
            params = landscape.space.sample(rng)
            attempts.append((params, landscape.objective_value(params)))
        attempts.sort(key=lambda t: t[1])
        cut = int(len(attempts) * publication_quantile)
        published = attempts[cut:][-n_papers:]
        self.corpus: list[PublishedResult] = []
        for i, (params, truth) in enumerate(published):
            reported = truth * (1.0 + optimism_bias
                                + float(rng.normal(0.0, noise)))
            self.corpus.append(PublishedResult(
                paper_id=f"doi:10.0/{i:04d}",
                params=tuple(sorted(params.items())),
                reported_value=float(reported), true_value=float(truth)))

    def search(self, top_k: int = 10,
               chemistry: Optional[tuple[str, ...]] = None
               ) -> list[PublishedResult]:
        """The best-reported prior results (optionally one chemistry)."""
        hits = self.corpus
        if chemistry is not None:
            hits = [p for p in hits
                    if self.landscape.space.discrete_key(
                        p.params_dict()) == chemistry]
        return sorted(hits, key=lambda p: -p.reported_value)[:top_k]

    def mean_inflation(self) -> float:
        if not self.corpus:
            return 0.0
        return float(np.mean([p.inflation for p in self.corpus]))


class LiteratureAgent:
    """Reviews the literature and seeds an optimizer with prior claims.

    Parameters
    ----------
    sim:
        Kernel (reviewing costs time).
    literature:
        The corpus to review.
    review_time_per_paper_s:
        Reading/extraction cost per paper.
    discount:
        Multiplier applied to reported values before absorption — a
        skeptical reviewer discounts the record (the knob that controls
        how badly optimism bias propagates).
    """

    def __init__(self, sim: "Simulator", literature: SyntheticLiterature, *,
                 review_time_per_paper_s: float = 300.0,
                 discount: float = 1.0) -> None:
        self.sim = sim
        self.literature = literature
        self.review_time_per_paper_s = review_time_per_paper_s
        self.discount = discount
        self.stats = {"papers_reviewed": 0, "claims_absorbed": 0}

    def review_into(self, optimizer, top_k: int = 10):
        """Generator: read the top papers and seed the optimizer.

        Returns the list of absorbed :class:`PublishedResult`.  Claims
        whose recipes fall outside the optimizer's (possibly
        safety-clipped) space are skipped — old papers used conditions a
        modern SDL will not run.
        """
        hits = self.literature.search(top_k=top_k)
        yield self.sim.timeout(self.review_time_per_paper_s * len(hits))
        absorbed = []
        for paper in hits:
            self.stats["papers_reviewed"] += 1
            params = paper.params_dict()
            if not optimizer.space.contains(params):
                continue
            optimizer.absorb(params, paper.reported_value * self.discount)
            absorbed.append(paper)
            self.stats["claims_absorbed"] += 1
        return absorbed
