"""Agent lifecycle supervision: heartbeats and automatic restart (M3).

"Adaptive fault-tolerant coordination mechanisms" start with noticing
that an agent died.  The :class:`Supervisor` watches heartbeats and
restarts agents whose beacons go silent — the agent-level half of E11's
fault-tolerance story (the instrument-level half lives in
:mod:`repro.core.faulttol`).  Restart pacing is a
:class:`~repro.resilience.RetryPolicy`, so crash-looping agents can be
backed off exponentially instead of thrashing the scheduler.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agents.base import Agent, AgentState
from repro.resilience import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class Supervisor:
    """Heartbeat watchdog with automatic restart.

    Parameters
    ----------
    sim:
        Kernel.
    check_interval_s:
        Watchdog sweep period.
    timeout_multiplier:
        An agent is declared dead after
        ``timeout_multiplier * heartbeat_interval_s`` of silence.
    restart_delay_s:
        Time to re-provision a crashed agent (ignored when
        ``restart_policy`` is given).
    auto_restart:
        Disable to measure the no-fault-tolerance baseline.
    restart_policy:
        Optional :class:`~repro.resilience.RetryPolicy` pacing successive
        restarts of the *same* agent; the default is a fixed
        ``restart_delay_s`` per restart (historical behaviour).  An
        exponential policy turns the supervisor into a crash-loop
        back-off.  ``max_attempts`` bounds restarts per agent; once
        exhausted the agent is left dead and a ``gave-up`` event is
        recorded.
    """

    def __init__(self, sim: "Simulator", *, check_interval_s: float = 5.0,
                 timeout_multiplier: float = 3.0,
                 restart_delay_s: float = 30.0,
                 auto_restart: bool = True,
                 restart_policy: Optional[RetryPolicy] = None) -> None:
        self.sim = sim
        self.check_interval_s = check_interval_s
        self.timeout_multiplier = timeout_multiplier
        self.restart_delay_s = restart_delay_s
        self.auto_restart = auto_restart
        self.restart_policy = (restart_policy
                               or RetryPolicy.fixed(restart_delay_s))
        self._watched: list[Agent] = []
        self._restarting: set[str] = set()
        self.restart_attempts: dict[str, int] = {}
        self.events: list[tuple[float, str, str]] = []
        self._proc = None

    def watch(self, agent: Agent) -> None:
        self._watched.append(agent)

    def start(self) -> None:
        if self._proc is not None:
            raise RuntimeError("supervisor already started")
        self._proc = self.sim.process(self._run())

    def _deadline(self, agent: Agent) -> float:
        return agent.heartbeat_interval_s * self.timeout_multiplier

    def _run(self):
        while True:
            yield self.sim.timeout(self.check_interval_s)
            now = self.sim.now
            for agent in self._watched:
                if agent.name in self._restarting:
                    continue
                silent_for = now - max(agent.last_heartbeat, 0.0)
                dead = (agent.state is AgentState.CRASHED
                        or (agent.state is AgentState.RUNNING
                            and silent_for > self._deadline(agent)))
                if dead:
                    self.events.append((now, "detected-dead", agent.name))
                    if self.auto_restart:
                        attempts = self.restart_attempts.get(agent.name, 0)
                        if not self.restart_policy.should_retry(attempts):
                            self.events.append((now, "gave-up", agent.name))
                            # Stop re-detecting it every sweep.
                            self._restarting.add(agent.name)
                            continue
                        self._restarting.add(agent.name)
                        self.sim.process(self._restart(agent))

    def _restart(self, agent: Agent):
        attempt = self.restart_attempts.get(agent.name, 0) + 1
        self.restart_attempts[agent.name] = attempt
        yield self.sim.timeout(self.restart_policy.delay(attempt))
        if agent.state is AgentState.RUNNING:
            # Hung but nominally running (heartbeats silent): kill first.
            agent.crash()
        agent.restart()
        self.events.append((self.sim.now, "restarted", agent.name))
        self._restarting.discard(agent.name)

    def detection_time(self, agent_name: str) -> Optional[float]:
        """Sim time of the first dead-detection for an agent."""
        for t, kind, name in self.events:
            if kind == "detected-dead" and name == agent_name:
                return t
        return None

    def restart_count(self) -> int:
        return sum(1 for _, kind, _ in self.events if kind == "restarted")
