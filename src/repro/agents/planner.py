"""The planner agent: hierarchical LLM orchestration of methods (M8).

Two operating modes, which experiment E1/E2 contrast:

- ``hierarchical`` (the paper's recommended architecture): the LLM acts
  as orchestrator — it picks *which tool* to use — and parameter
  selection is delegated to a sound optimizer (BO).  LLM calls happen
  only at stage boundaries, so campaigns are fast and proposals sound.
- ``llm-direct`` (the strawman the paper warns about): the LLM proposes
  experimental parameters itself on every step, paying latency each time
  and hallucinating at its base rate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.agents.base import Agent, AgentRuntime
from repro.agents.llm import SimulatedLLM
from repro.methods.baselines import AskTellOptimizer
from repro.sim.ids import next_label


@dataclass
class ExperimentPlan:
    """One proposed experiment.

    ``expected`` carries the planner's predicted outcome — what the twin
    checks claims against.  ``grounded`` is hidden accounting metadata
    (set by the LLM model), never consulted by orchestration logic.
    """

    params: dict[str, Any]
    instrument_op: str = "synthesize"
    expected: dict[str, float] = field(default_factory=dict)
    source: str = "optimizer"
    rationale: str = ""
    plan_id: str = ""
    grounded: bool = True
    verified: bool = False
    repaired: bool = False

    def __post_init__(self) -> None:
        if not self.plan_id:
            # Plans minted by a PlannerAgent get instance-scoped ids; this
            # ambient-world fallback covers plans built outside a planner
            # (the determinism contract extends to trace exports, which
            # carry plan_id attributes).
            self.plan_id = next_label("plan")


class PlannerAgent(Agent):
    """Produces :class:`ExperimentPlan` objects for the orchestrator.

    Parameters
    ----------
    optimizer:
        The sound ask/tell method (BO / nested BO) used in hierarchical
        mode — and available as a repair fallback in any mode.
    llm:
        The simulated LLM.
    mode:
        ``"hierarchical"`` or ``"llm-direct"``.
    safety_envelope:
        Advisory envelope passed into LLM prompts (the model may still
        ignore it — that is the hallucination).
    """

    role = "planner"

    def __init__(self, sim, name: str, site: str, runtime: AgentRuntime,
                 optimizer: AskTellOptimizer, llm: SimulatedLLM, *,
                 mode: str = "hierarchical",
                 safety_envelope: Optional[Mapping[str, tuple[float, float]]] = None,
                 **kw: Any) -> None:
        super().__init__(sim, name, site, runtime, **kw)
        if mode not in ("hierarchical", "llm-direct"):
            raise ValueError(f"unknown planner mode {mode!r}")
        self.optimizer = optimizer
        self.llm = llm
        self.mode = mode
        self.safety_envelope = dict(safety_envelope or {})
        self.plan_stats = {"plans": 0, "llm_plans": 0, "optimizer_plans": 0,
                           "repairs": 0}
        self._plan_ids = itertools.count(1)

    def _next_plan_id(self) -> str:
        return f"{self.name}-plan-{next(self._plan_ids)}"

    # -- planning --------------------------------------------------------------

    def next_plan(self):
        """Generator: produce the next experiment plan."""
        self.plan_stats["plans"] += 1
        if self.mode == "hierarchical":
            plan = yield from self._hierarchical_plan()
        else:
            plan = yield from self._llm_direct_plan()
        return plan

    def _hierarchical_plan(self):
        # The LLM only *selects the tool* (amortized: once per 10 steps it
        # reconsiders; otherwise the cached choice stands).
        if self.plan_stats["plans"] % 10 == 1:
            resp = yield from self.llm.select_tool(
                goal="maximize campaign objective",
                tools=["bayesian-optimization", "random-search",
                       "grid-search"],
                preferred="bayesian-optimization")
            self._tool_choice = resp.content["tool"]
        params = self.optimizer.ask()
        expected = {}
        mean, std = self._posterior(params)
        if mean is not None:
            expected = {"objective": mean}
        self.plan_stats["optimizer_plans"] += 1
        return ExperimentPlan(params=dict(params), expected=expected,
                              source="optimizer",
                              rationale="BO acquisition argmax",
                              plan_id=self._next_plan_id(),
                              grounded=True)

    def _llm_direct_plan(self):
        resp = yield from self.llm.propose_parameters(
            self.optimizer.space, self.optimizer.history,
            safety_envelope=self.safety_envelope)
        self.plan_stats["llm_plans"] += 1
        content = resp.content
        return ExperimentPlan(params=dict(content["params"]),
                              expected=dict(content.get("expected", {})),
                              source="llm",
                              rationale="LLM free-form proposal",
                              plan_id=self._next_plan_id(),
                              grounded=resp.grounded)

    def repair_plan(self, rejected: ExperimentPlan):
        """Generator: replace a verification-rejected plan.

        First repair falls back to the sound optimizer (M8's safety net).
        If an *optimizer* proposal was itself rejected (e.g. its
        acquisition is pinned against a forbidden region it cannot see),
        the repair diversifies to a random safe-space sample instead of
        re-asking for the same point forever.
        """
        self.plan_stats["repairs"] += 1
        if rejected.repaired or rejected.source.startswith("optimizer"):
            params = self.optimizer.space.sample(self.llm.rng)
            return ExperimentPlan(params=dict(params),
                                  source="optimizer-repair",
                                  rationale=f"diversified repair of "
                                            f"{rejected.plan_id}",
                                  plan_id=self._next_plan_id(),
                                  grounded=True, repaired=True)
        params = self.optimizer.ask()
        expected = {}
        mean, _std = self._posterior(params)
        if mean is not None:
            expected = {"objective": mean}
        return ExperimentPlan(params=dict(params), expected=expected,
                              source="optimizer-repair",
                              rationale=f"repair of {rejected.plan_id}",
                              plan_id=self._next_plan_id(),
                              grounded=True, repaired=True)
        yield  # pragma: no cover - marks this function as a generator

    # -- feedback ----------------------------------------------------------------------

    def observe(self, params: Mapping[str, Any], objective: float) -> None:
        self.optimizer.tell(params, objective)

    def _posterior(self, params: Mapping[str, Any]):
        posterior = getattr(self.optimizer, "posterior_at", None)
        if posterior is None:
            return None, None
        try:
            mean, std = posterior(params)
        except Exception:
            return None, None
        if std == float("inf"):
            return None, None
        return mean, std
