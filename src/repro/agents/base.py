"""The agent runtime: mailboxes, dispatch, heartbeats, crash semantics.

Agents are stateful simulation processes with an address.  They receive
:class:`~repro.comm.message.Message` objects through a mailbox, dispatch
them to per-performative handlers, and emit periodic heartbeats that the
:class:`~repro.agents.lifecycle.Supervisor` watches.  Crash/restart is a
first-class operation because E11 injects agent failures.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.comm.message import Message, Performative
from repro.sim.process import Interrupt
from repro.sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator


class AgentState(enum.Enum):
    INIT = "init"
    RUNNING = "running"
    CRASHED = "crashed"
    STOPPED = "stopped"


class AgentRuntime:
    """Routes messages between agents, modelling cross-site latency.

    One runtime per federation; agents register on start.  Delivery
    between co-located agents is immediate; between sites it rides the
    simulated network.
    """

    def __init__(self, sim: "Simulator",
                 network: Optional["Network"] = None) -> None:
        self.sim = sim
        self.network = network
        self._agents: dict[str, "Agent"] = {}
        self.stats = {"delivered": 0, "dropped": 0}

    def register(self, agent: "Agent") -> None:
        self._agents[agent.name] = agent

    def agent(self, name: str) -> "Agent":
        return self._agents[name]

    def agents(self) -> list["Agent"]:
        return [self._agents[k] for k in sorted(self._agents)]

    def deliver(self, message: Message):
        """Generator: route a message to its recipient's mailbox."""
        recipient = self._agents.get(message.recipient)
        sender = self._agents.get(message.sender)
        if recipient is None:
            self.stats["dropped"] += 1
            return False
        if (self.network is not None and sender is not None
                and sender.site != recipient.site):
            yield self.network.send(sender.site, recipient.site,
                                    message.size_bytes())
        recipient.mailbox.put(message)
        self.stats["delivered"] += 1
        return True


class Agent:
    """Base class for all AISLE agents.

    Subclasses register handlers with :meth:`on` (or override
    :meth:`handle`) and may override :meth:`setup` for start-time state.

    Parameters
    ----------
    sim, name, site:
        Identity.
    runtime:
        The shared :class:`AgentRuntime`.
    heartbeat_interval_s:
        Period of liveness beacons (0 disables).
    """

    role = "agent"

    def __init__(self, sim: "Simulator", name: str, site: str,
                 runtime: AgentRuntime,
                 heartbeat_interval_s: float = 5.0) -> None:
        self.sim = sim
        self.name = name
        self.site = site
        self.runtime = runtime
        self.heartbeat_interval_s = heartbeat_interval_s
        self.mailbox: Store = Store(sim)
        self.state = AgentState.INIT
        self.last_heartbeat = -1.0
        self.heartbeat_listeners: list[Callable[["Agent", float], None]] = []
        self._handlers: dict[Performative, Callable[[Message], Any]] = {}
        self._procs: list[Any] = []
        self.stats = {"handled": 0, "sent": 0, "crashes": 0, "restarts": 0}
        runtime.register(self)

    # -- lifecycle ------------------------------------------------------------

    def setup(self) -> None:
        """Hook for subclass start-time initialization."""

    def start(self) -> "Agent":
        if self.state is AgentState.RUNNING:
            raise RuntimeError(f"{self.name} is already running")
        self.setup()
        self.state = AgentState.RUNNING
        # A fresh start earns a full heartbeat interval of grace —
        # otherwise the supervisor immediately re-flags a just-restarted
        # agent whose last beacon predates its crash.
        self.last_heartbeat = self.sim.now
        self._procs = [self.sim.process(self._message_loop())]
        if self.heartbeat_interval_s > 0:
            self._procs.append(self.sim.process(self._heartbeat_loop()))
        return self

    def crash(self) -> None:
        """Kill the agent abruptly (fault injection)."""
        if self.state is not AgentState.RUNNING:
            return
        self.state = AgentState.CRASHED
        self.stats["crashes"] += 1
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("crash")
        self._procs = []

    def stop(self) -> None:
        """Graceful shutdown."""
        if self.state is not AgentState.RUNNING:
            return
        self.state = AgentState.STOPPED
        for proc in self._procs:
            if proc.is_alive:
                proc.interrupt("stop")
        self._procs = []

    def restart(self) -> None:
        """Bring a crashed/stopped agent back (fresh mailbox loop)."""
        if self.state is AgentState.RUNNING:
            return
        self.stats["restarts"] += 1
        self.state = AgentState.INIT
        self.start()

    @property
    def alive(self) -> bool:
        return self.state is AgentState.RUNNING

    # -- messaging -----------------------------------------------------------------

    def on(self, performative: Performative,
           handler: Callable[[Message], Any]) -> None:
        """Register a handler; generator handlers get their own process."""
        self._handlers[performative] = handler

    def send(self, recipient: str, performative: Performative,
             payload: Any = None, conversation_id: str = ""):
        """Generator: send a message through the runtime."""
        msg = Message(performative=performative, sender=self.name,
                      recipient=recipient, payload=payload,
                      conversation_id=conversation_id, reply_to=self.name)
        self.stats["sent"] += 1
        ok = yield from self.runtime.deliver(msg)
        return ok

    def handle(self, message: Message) -> Any:
        """Default dispatch; subclasses may override entirely."""
        handler = self._handlers.get(message.performative)
        if handler is not None:
            return handler(message)
        return None

    def _message_loop(self):
        try:
            while True:
                message: Message = yield self.mailbox.get()
                self.stats["handled"] += 1
                result = self.handle(message)
                if hasattr(result, "send") and hasattr(result, "throw"):
                    # Generator handler: run it as a sub-process so slow
                    # handlers do not block the mailbox.
                    self.sim.process(result)
        except Interrupt:
            return

    def _heartbeat_loop(self):
        try:
            while True:
                yield self.sim.timeout(self.heartbeat_interval_s)
                self.last_heartbeat = self.sim.now
                for listener in self.heartbeat_listeners:
                    listener(self, self.sim.now)
        except Interrupt:
            return

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}@{self.site} {self.state.value}>"
