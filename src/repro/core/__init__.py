"""AI-agent-driven autonomous orchestration — the AISLE core (§3.3).

- :mod:`repro.core.campaign` — campaign specs and results.
- :mod:`repro.core.verification` — the M8 verification stack: physics
  constraints + digital-twin in-situ checks + surrogate consistency.
- :mod:`repro.core.orchestrator` — the hierarchical orchestrator
  (LLM-as-orchestrator over sound methods) and its campaign loop.
- :mod:`repro.core.manual` — the human-in-every-loop baseline (E1/E10).
- :mod:`repro.core.knowledge` — cross-facility knowledge integration (M9).
- :mod:`repro.core.faulttol` — fault-tolerant execution (M3, E11).
- :mod:`repro.core.federation` — multi-site lab construction and sample
  logistics.
- :mod:`repro.core.workflow` — dependency-DAG execution of multi-step
  experimental workflows.
- :mod:`repro.core.report` — the canonical :class:`CampaignReport`
  result type (every entry point's plain-data return shape).
- :mod:`repro.core.metrics` — speedup / time-to-target accounting.
"""

from repro.core.campaign import CampaignResult, CampaignSpec, ExperimentRecord
from repro.core.faulttol import FaultTolerantExecutor
from repro.core.federation import FederationManager, LabSite
from repro.core.knowledge import KnowledgeBase
from repro.core.manual import ManualOrchestrator
from repro.core.metrics import (CampaignMetrics, experiments_to_target,
                                speedup, time_to_target)
from repro.core.orchestrator import HierarchicalOrchestrator
from repro.core.report import CampaignReport
from repro.core.verification import (PhysicsConstraintVerifier,
                                     SurrogateConsistencyVerifier,
                                     TwinVerifier, VerificationStack)
from repro.core.workflow import WorkflowDAG, WorkflowStep

__all__ = [
    "CampaignMetrics",
    "CampaignReport",
    "CampaignResult",
    "CampaignSpec",
    "ExperimentRecord",
    "FaultTolerantExecutor",
    "FederationManager",
    "HierarchicalOrchestrator",
    "KnowledgeBase",
    "LabSite",
    "ManualOrchestrator",
    "PhysicsConstraintVerifier",
    "SurrogateConsistencyVerifier",
    "TwinVerifier",
    "VerificationStack",
    "WorkflowDAG",
    "WorkflowStep",
    "experiments_to_target",
    "speedup",
    "time_to_target",
]
