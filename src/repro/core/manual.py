"""The manual-orchestration baseline (E1's denominator, E10's "decades").

Models the traditional research workflow the paper's introduction
describes: a human scientist designs a *batch* of experiments, waits for
the lab to run them, analyzes the results, and decides the next batch —
with human decision latency (meetings, analysis, other duties) between
cycles, and no decisions outside working hours.

The same underlying selection method (the shared optimizer) is used, so
E1 isolates *orchestration latency*, not statistical skill.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.agents.evaluator import EvaluatorAgent
from repro.agents.executor import ExecutorAgent
from repro.agents.planner import ExperimentPlan, PlannerAgent
from repro.core.campaign import CampaignResult, CampaignSpec, ExperimentRecord
from repro.instruments.errors import InstrumentFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator

#: Seconds in a (simulated) day.
DAY = 86_400.0


class ManualOrchestrator:
    """Human-in-every-loop campaign runner.

    Parameters
    ----------
    sim:
        Kernel.
    planner / executor / evaluator:
        Same trio as the autonomous loop — the planner is used purely as
        an optimizer front-end here (``mode`` is ignored; the human runs
        the analysis software by hand).
    batch_size:
        Experiments designed per decision cycle.
    decision_delay_s:
        Mean human turnaround per decision cycle (log-normal, sigma 0.4).
    workday:
        ``(start_hour, end_hour)`` during which decisions can happen;
        decisions queued outside hours wait for the next morning.
    rng:
        Random stream for human latency.
    """

    def __init__(self, sim: "Simulator", planner: PlannerAgent,
                 executor: ExecutorAgent, evaluator: EvaluatorAgent, *,
                 batch_size: int = 4, decision_delay_s: float = 4 * 3600.0,
                 workday: tuple[float, float] = (9.0, 17.0),
                 rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.planner = planner
        self.executor = executor
        self.evaluator = evaluator
        self.batch_size = batch_size
        self.decision_delay_s = decision_delay_s
        self.workday = workday
        self.rng = rng or np.random.default_rng(0)
        self.site = executor.site

    # -- human time model ---------------------------------------------------------

    def _next_working_instant(self, t: float) -> float:
        """Earliest time >= t within working hours."""
        start_h, end_h = self.workday
        day = int(t // DAY)
        hour = (t % DAY) / 3600.0
        if hour < start_h:
            return day * DAY + start_h * 3600.0
        if hour >= end_h:
            return (day + 1) * DAY + start_h * 3600.0
        return t

    def _human_delay(self) -> float:
        mu = np.log(self.decision_delay_s)
        return float(self.rng.lognormal(mean=mu, sigma=0.4))

    def _decision_pause(self):
        """Generator: one human decision cycle's worth of waiting."""
        ready = self.sim.now + self._human_delay()
        ready = self._next_working_instant(ready)
        if ready > self.sim.now:
            yield self.sim.timeout(ready - self.sim.now)

    # -- campaign loop ----------------------------------------------------------------

    def run_campaign(self, spec: CampaignSpec):
        """Generator: run the campaign with human cadence."""
        result = CampaignResult(spec=spec, started=self.sim.now)
        stop_reason = "budget-exhausted"
        done = False
        while result.n_experiments < spec.max_experiments and not done:
            # The scientist thinks, then designs a batch.
            yield from self._decision_pause()
            batch: list[ExperimentPlan] = []
            n = min(self.batch_size,
                    spec.max_experiments - result.n_experiments)
            for _ in range(n):
                params = self.planner.optimizer.ask()
                batch.append(ExperimentPlan(params=dict(params),
                                            source="human+optimizer",
                                            rationale="manual batch design"))
            # The lab runs the batch serially (one robot, one operator).
            for plan in batch:
                try:
                    outcome = yield from self.executor.execute(plan)
                except InstrumentFault as exc:
                    stop_reason = f"instrument-fault: {exc}"
                    done = True
                    break
                verdict = self.evaluator.evaluate(outcome)
                result.records.append(ExperimentRecord(
                    index=len(result.records),
                    params=dict(plan.params), valid=outcome.valid,
                    objective=outcome.objective, source=plan.source,
                    started=outcome.started, finished=outcome.finished,
                    site=self.site))
                if verdict.get("target_reached"):
                    stop_reason = "target-reached"
                    done = True
                    break
                if verdict.get("converged"):
                    stop_reason = "converged"
                    done = True
                    break
        result.finished = self.sim.now
        result.best_value = self.evaluator.best_value
        result.best_params = self.evaluator.best_params
        result.stop_reason = stop_reason
        result.counters = {"planner_mode": "manual",
                           "batch_size": self.batch_size}
        return result
