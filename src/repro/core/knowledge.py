"""Cross-facility knowledge integration (milestone M9).

"Deploy a knowledge integration system with 3+ facilities, propagating
insights across sites in real-time to reduce required experiments by
>30%."

Each participating site registers a :class:`KnowledgeNode` holding its
local optimizer and a :class:`~repro.methods.transfer.TransferAdapter`.
When a site publishes a valid observation, the base ships it to every
other node over the simulated WAN (propagation latency is real); before
each planning step, a site *syncs* — absorbing bias-corrected foreign
observations into its optimizer.

Three policies, ablated in E3:

- ``"none"`` — isolated sites (the baseline).
- ``"raw"`` — share observations verbatim (calibration offsets leak in).
- ``"corrected"`` — share through the transfer adapter (recommended).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.methods.transfer import TransferAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import ParameterSpace
    from repro.net.transport import Network
    from repro.sim.kernel import Simulator

POLICIES = ("none", "raw", "corrected")


@dataclass
class _Donation:
    source: str
    params: dict[str, Any]
    value: float
    arrived: float


class KnowledgeNode:
    """One site's view of the shared knowledge."""

    def __init__(self, site: str, optimizer, space: "ParameterSpace") -> None:
        self.site = site
        self.optimizer = optimizer
        self.adapter = TransferAdapter(space)
        self.inbox: list[_Donation] = []
        self._absorbed = 0  # raw policy: prefix of inbox already absorbed
        self._absorbed_by_source: dict[str, int] = {}  # corrected policy
        self.reasoning_traces: list[str] = []


class KnowledgeBase:
    """The federation-wide knowledge integration fabric.

    Parameters
    ----------
    sim, network:
        Kernel and transport (propagation rides real links).
    policy:
        One of :data:`POLICIES`.
    observation_bytes:
        Wire size of one shared observation.
    """

    def __init__(self, sim: "Simulator", network: Optional["Network"],
                 policy: str = "corrected",
                 observation_bytes: float = 2048.0) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        self.sim = sim
        self.network = network
        self.policy = policy
        self.observation_bytes = observation_bytes
        self.nodes: dict[str, KnowledgeNode] = {}
        self.stats = {"published": 0, "propagated": 0, "absorbed": 0}

    def register(self, site: str, optimizer,
                 space: "ParameterSpace") -> KnowledgeNode:
        if site in self.nodes:
            raise ValueError(f"site {site!r} already registered")
        node = KnowledgeNode(site, optimizer, space)
        self.nodes[site] = node
        return node

    # -- publication ------------------------------------------------------------

    def publish(self, site: str, params: Mapping[str, Any], value: float,
                trace: str = "") -> None:
        """Share a local observation with the federation (fire-and-forget).

        Propagation to each peer is asynchronous: a peer sees the
        donation only after the WAN latency to it has elapsed.
        """
        node = self.nodes[site]
        node.adapter.observe_local(params, value)
        if trace:
            node.reasoning_traces.append(trace)
        self.stats["published"] += 1
        if self.policy == "none":
            return
        for peer_site, peer in self.nodes.items():
            if peer_site == site:
                continue
            self._ship(site, peer, dict(params), float(value))

    def _ship(self, src: str, peer: KnowledgeNode, params: dict[str, Any],
              value: float) -> None:
        def deliver() -> None:
            peer.inbox.append(_Donation(source=src, params=params,
                                        value=value, arrived=self.sim.now))
            peer.adapter.receive(src, params, value)
            self.stats["propagated"] += 1

        if self.network is None:
            deliver()
            return
        try:
            path = self.network.route(src, peer.site)
            delay = self.network.sample_delay(path, self.observation_bytes)
        except Exception:
            return  # unreachable peer: the donation is simply lost
        self.sim.schedule_callback(delay, deliver)

    # -- absorption ------------------------------------------------------------------

    def sync(self, site: str) -> int:
        """Absorb newly arrived foreign knowledge into the local optimizer.

        Returns the number of observations absorbed.  ``raw`` policy
        absorbs donated values verbatim; ``corrected`` re-derives the
        full corrected donation set (offsets improve as more pairs
        accumulate) and absorbs only the not-yet-absorbed tail.
        """
        node = self.nodes[site]
        if self.policy == "none":
            return 0
        if self.policy == "raw":
            fresh = node.inbox[node._absorbed:]
            for d in fresh:
                node.optimizer.absorb(d.params, d.value)
            node._absorbed = len(node.inbox)
            self.stats["absorbed"] += len(fresh)
            return len(fresh)
        # corrected: absorb per-source tails (sources interleave, so a
        # single global cursor would double-absorb)
        absorbed = 0
        for source in sorted(node.adapter._foreign):
            donations = node.adapter.corrected_donations(source)
            start = node._absorbed_by_source.get(source, 0)
            for params, value in donations[start:]:
                node.optimizer.absorb(params, value)
                absorbed += 1
            node._absorbed_by_source[source] = len(donations)
        self.stats["absorbed"] += absorbed
        return absorbed

    # -- introspection ----------------------------------------------------------------------

    def total_donations_at(self, site: str) -> int:
        return len(self.nodes[site].inbox)

    def reasoning_traces(self) -> list[str]:
        out = []
        for site in sorted(self.nodes):
            out.extend(self.nodes[site].reasoning_traces)
        return out
