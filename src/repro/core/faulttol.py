"""Fault-tolerant experiment execution (M3, experiment E11).

Wraps an executor with the "adaptive fault-tolerant coordination
mechanisms" the roadmap calls for:

- **retry with repair**: on an instrument fault, dispatch repair and
  retry the plan (bounded attempts under a
  :class:`~repro.resilience.RetryPolicy`);
- **failover**: if alternate executors are registered (another site's
  identical rig), re-route the plan there while repair proceeds; the
  primary route is guarded by a :class:`~repro.resilience.CircuitBreaker`
  so repeatedly-faulting hardware is quarantined instead of re-tried;
- **supervision**: agent crashes are already covered by
  :class:`repro.agents.lifecycle.Supervisor`; this class handles the
  hardware side.

The attempt loop itself is :func:`repro.resilience.resilient_call` —
this class only contributes route selection and repair scheduling.
Without fault tolerance, a single instrument fault ends the campaign
(the ``HierarchicalOrchestrator`` lets :class:`InstrumentFault`
propagate) — that contrast is E11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agents.executor import ExecutorAgent, ExperimentOutcome
from repro.agents.planner import ExperimentPlan
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.errors import InstrumentFault
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.resilience import (CircuitBreaker, RetriesExhausted, RetryPolicy,
                              resilient_call)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class FaultTolerantExecutor:
    """Retry/repair/failover wrapper around one or more executors.

    Parameters
    ----------
    sim:
        Kernel.
    primary:
        The home executor.
    primary_instruments:
        Instruments whose faults we can repair (the synthesis rig and the
        characterization instrument, typically).
    alternates:
        Executors at other sites that can run the same plan.
    max_attempts:
        Total execution attempts per plan across all routes (ignored when
        ``retry_policy`` is given).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` the
        fault-handling counters and repair-time histogram report into.
    retry_policy:
        Optional explicit attempt policy (defaults to ``max_attempts``
        immediate retries — repair time, not backoff, paces the loop).
    breaker:
        Optional shared breaker guarding the primary route; one is built
        when omitted (two consecutive primary faults quarantine it for
        ``breaker_recovery_s``).  Only consulted when alternates exist —
        with a single route there is nothing to re-route to.
    breaker_recovery_s:
        Quarantine window for the default primary-route breaker.
    tracer:
        Optional tracer; attempts run inside ``resilience.attempt`` spans.
    """

    def __init__(self, sim: "Simulator", primary: ExecutorAgent,
                 primary_instruments: Optional[list[Instrument]] = None,
                 alternates: Optional[list[ExecutorAgent]] = None,
                 max_attempts: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 breaker_recovery_s: float = 900.0,
                 tracer=NULL_TRACER) -> None:
        self.sim = sim
        self.primary = primary
        self.primary_instruments = list(primary_instruments or [])
        self.alternates = list(alternates or [])
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self.retry_policy = retry_policy or RetryPolicy.immediate(max_attempts)
        self.max_attempts = self.retry_policy.max_attempts
        self.breaker = breaker or CircuitBreaker(
            sim, failure_threshold=2, recovery_time_s=breaker_recovery_s,
            name=f"faulttol.{primary.site}", metrics=self.metrics)
        self.stats = self.metrics.stats(
            "faulttol",
            {"attempts": 0, "faults_handled": 0, "repairs": 0,
             "failovers": 0, "gave_up": 0}, site=primary.site)
        self.repair_hist = self.metrics.histogram("faulttol.repair_time",
                                                  site=primary.site)
        self.events: list[tuple[float, str, str]] = []
        self._repairing: set[str] = set()

    def _repair_faulted(self):
        """Generator: repair every faulted primary instrument (blocking)."""
        for inst in self.primary_instruments:
            if (inst.status is InstrumentStatus.FAULT
                    and inst.name not in self._repairing):
                self._repairing.add(inst.name)
                started = self.sim.now
                self.events.append((started, "repair-start", inst.name))
                try:
                    yield from inst.repair()
                finally:
                    self._repairing.discard(inst.name)
                self.stats["repairs"] += 1
                self.repair_hist.observe(self.sim.now - started)
                self.events.append((self.sim.now, "repair-done", inst.name))

    def _start_background_repair(self) -> None:
        """Dispatch repair without blocking the campaign (failover mode)."""
        self.sim.process(self._repair_faulted())

    # -- route selection -------------------------------------------------------

    def _select_route(self) -> ExecutorAgent:
        """Primary unless it is down or quarantined and an alternate is up."""
        if self.alternates and (self._primary_down()
                                or not self.breaker.allow()):
            alternate = self._pick_alternate()
            if alternate is not None:
                self.stats["failovers"] += 1
                self.events.append(
                    (self.sim.now, "failover", alternate.site))
                return alternate
        return self.primary

    def _attempt(self, plan: ExperimentPlan):
        self.stats["attempts"] += 1
        route = self._select_route()
        try:
            outcome = yield from route.execute(plan)
        except InstrumentFault as exc:
            self.stats["faults_handled"] += 1
            self.events.append((self.sim.now, "fault", str(exc)))
            if route is self.primary:
                self.breaker.record_failure()
                if self.alternates:
                    # Fail over next attempt; fix the primary meanwhile.
                    self._start_background_repair()
            raise
        if route is self.primary:
            self.breaker.record_success()
        return outcome

    def _recover(self, _exc, _next_attempt):
        """Between attempts: without an alternate, the campaign waits out
        the repair before the plan is retried."""
        if not self.alternates:
            yield from self._repair_faulted()

    # -- execution -------------------------------------------------------------

    def execute(self, plan: ExperimentPlan):
        """Generator: run a plan with fault handling; returns the outcome.

        Raises :class:`InstrumentFault` only after every route and
        attempt is exhausted.
        """
        try:
            # detlint: ignore[C003] bounded by retry_policy.max_attempts over a finite route set; a sim-time budget would abort mid-repair
            outcome: ExperimentOutcome = yield from resilient_call(
                self.sim, lambda _n: self._attempt(plan),
                policy=self.retry_policy,
                retry_on=(InstrumentFault,),
                recover=self._recover,
                name=f"faulttol.{self.primary.site}",
                tracer=self.tracer, metrics=self.metrics)
        except RetriesExhausted as exc:
            self.stats["gave_up"] += 1
            raise (exc.last_error
                   or InstrumentFault("execution failed")) from None
        return outcome

    def _primary_down(self) -> bool:
        return any(inst.status in (InstrumentStatus.FAULT,
                                   InstrumentStatus.OFFLINE)
                   for inst in self.primary_instruments)

    def _pick_alternate(self) -> Optional[ExecutorAgent]:
        for alt in self.alternates:
            if alt.alive or alt.state.value == "init":
                return alt
        return None
