"""Fault-tolerant experiment execution (M3, experiment E11).

Wraps an executor with the "adaptive fault-tolerant coordination
mechanisms" the roadmap calls for:

- **retry with repair**: on an instrument fault, dispatch repair and
  retry the plan (bounded attempts);
- **failover**: if alternate executors are registered (another site's
  identical rig), re-route the plan there while repair proceeds;
- **supervision**: agent crashes are already covered by
  :class:`repro.agents.lifecycle.Supervisor`; this class handles the
  hardware side.

Without fault tolerance, a single instrument fault ends the campaign
(the ``HierarchicalOrchestrator`` lets :class:`InstrumentFault`
propagate) — that contrast is E11.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.agents.executor import ExecutorAgent, ExperimentOutcome
from repro.agents.planner import ExperimentPlan
from repro.instruments.base import Instrument, InstrumentStatus
from repro.instruments.errors import InstrumentFault
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class FaultTolerantExecutor:
    """Retry/repair/failover wrapper around one or more executors.

    Parameters
    ----------
    sim:
        Kernel.
    primary:
        The home executor.
    primary_instruments:
        Instruments whose faults we can repair (the synthesis rig and the
        characterization instrument, typically).
    alternates:
        Executors at other sites that can run the same plan.
    max_attempts:
        Total execution attempts per plan across all routes.
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` the
        fault-handling counters and repair-time histogram report into.
    """

    def __init__(self, sim: "Simulator", primary: ExecutorAgent,
                 primary_instruments: Optional[list[Instrument]] = None,
                 alternates: Optional[list[ExecutorAgent]] = None,
                 max_attempts: int = 3,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.primary = primary
        self.primary_instruments = list(primary_instruments or [])
        self.alternates = list(alternates or [])
        self.max_attempts = max_attempts
        self.metrics = metrics or MetricsRegistry()
        self.stats = self.metrics.stats(
            "faulttol",
            {"attempts": 0, "faults_handled": 0, "repairs": 0,
             "failovers": 0, "gave_up": 0}, site=primary.site)
        self.repair_hist = self.metrics.histogram("faulttol.repair_time",
                                                  site=primary.site)
        self.events: list[tuple[float, str, str]] = []
        self._repairing: set[str] = set()

    def _repair_faulted(self):
        """Generator: repair every faulted primary instrument (blocking)."""
        for inst in self.primary_instruments:
            if (inst.status is InstrumentStatus.FAULT
                    and inst.name not in self._repairing):
                self._repairing.add(inst.name)
                started = self.sim.now
                self.events.append((started, "repair-start", inst.name))
                try:
                    yield from inst.repair()
                finally:
                    self._repairing.discard(inst.name)
                self.stats["repairs"] += 1
                self.repair_hist.observe(self.sim.now - started)
                self.events.append((self.sim.now, "repair-done", inst.name))

    def _start_background_repair(self) -> None:
        """Dispatch repair without blocking the campaign (failover mode)."""
        self.sim.process(self._repair_faulted())

    def execute(self, plan: ExperimentPlan):
        """Generator: run a plan with fault handling; returns the outcome.

        Raises :class:`InstrumentFault` only after every route and
        attempt is exhausted.
        """
        last_fault: Optional[InstrumentFault] = None
        for attempt in range(1, self.max_attempts + 1):
            self.stats["attempts"] += 1
            # Route: primary unless it is down and an alternate is up.
            route = self.primary
            if self._primary_down() and self.alternates:
                route = self._pick_alternate() or self.primary
                if route is not self.primary:
                    self.stats["failovers"] += 1
                    self.events.append(
                        (self.sim.now, "failover", route.site))
            try:
                outcome = yield from route.execute(plan)
                return outcome
            except InstrumentFault as exc:
                last_fault = exc
                self.stats["faults_handled"] += 1
                self.events.append((self.sim.now, "fault", str(exc)))
                if route is self.primary:
                    if self.alternates:
                        # Fail over now; fix the primary in the background.
                        self._start_background_repair()
                    else:
                        # No alternate: the campaign waits out the repair.
                        yield from self._repair_faulted()
        self.stats["gave_up"] += 1
        raise last_fault or InstrumentFault("execution failed")

    def _primary_down(self) -> bool:
        return any(inst.status in (InstrumentStatus.FAULT,
                                   InstrumentStatus.OFFLINE)
                   for inst in self.primary_instruments)

    def _pick_alternate(self) -> Optional[ExecutorAgent]:
        for alt in self.alternates:
            if alt.alive or alt.state.value == "init":
                return alt
        return None
