"""The canonical campaign result type: :class:`CampaignReport`.

Before this module existed the repo had three divergent result shapes —
``CampaignResult.summary()`` (a loose dict for printing),
``CampaignMetrics.from_result`` (derived comparison quantities), and
``BuiltTestbed.run_summary`` (a picklable dict for the scale-out layer).
Each was assembled by hand at its call site, and none agreed on keys.

:class:`CampaignReport` collapses them into one typed, frozen dataclass:

- built once from a :class:`~repro.core.campaign.CampaignResult` via
  :meth:`CampaignReport.from_result` (every derived quantity — validity,
  correctness, time-to-target — is computed here and nowhere else);
- **plain data** throughout, so a report can be pickled across process
  boundaries and digested by
  :func:`repro.scale.hashing.decision_hash` unchanged;
- :meth:`to_dict` is the stable wire/JSON form (a superset of the old
  ``run_summary`` keys, including the per-experiment ``decisions`` rows
  that pin the full decision sequence);
- :meth:`summary` reproduces the old ``CampaignResult.summary()`` shape
  for printing;
- :meth:`metrics` yields a :class:`~repro.core.metrics.CampaignMetrics`
  for arm-vs-arm comparisons.

The three legacy entry points still work as thin delegating wrappers
that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional

from repro.core.campaign import CampaignResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import CampaignMetrics

#: ``to_dict`` schema version; bump when keys change incompatibly.
REPORT_SCHEMA = 1


@dataclass(frozen=True)
class CampaignReport:
    """Everything one campaign produced, as plain immutable data.

    Attributes
    ----------
    campaign / objective_key:
        Identity: the campaign name and the measured quantity.
    tenant:
        Owning tenant when the campaign ran through
        :class:`repro.service.CampaignService` (empty for library runs).
    n_experiments / n_valid / correctness:
        Executed experiment count, how many produced usable data, and
        their ratio (the E2 correctness metric; 1.0 on an empty run).
    best_value / best_params:
        The campaign's winner.
    stop_reason:
        Why the loop ended (``"target-reached"``, ``"budget-exhausted"``,
        ``"cancelled"``, ...).
    started / finished:
        Campaign start/end on the simulated clock.
    sim_seconds:
        Simulator clock when the report was cut (>= ``finished``).
    target / time_to_target / experiments_to_target:
        Attainment accounting against ``target`` (``None`` = never
        reached, reported as "DNF" rather than a fabricated number).
    counters:
        Component tallies (planner/verification/fault-tolerance stats).
    decisions:
        One row per executed experiment —
        ``[index, objective (nan when invalid), started, finished,
        valid]`` — pinning the full per-experiment decision sequence for
        :func:`~repro.scale.hashing.decision_hash`, not just the winner.
    """

    campaign: str
    objective_key: str
    tenant: str = ""
    n_experiments: int = 0
    n_valid: int = 0
    correctness: float = 1.0
    best_value: Optional[float] = None
    best_params: Optional[dict[str, Any]] = None
    stop_reason: str = ""
    started: float = 0.0
    finished: float = 0.0
    sim_seconds: float = 0.0
    target: Optional[float] = None
    time_to_target: Optional[float] = None
    experiments_to_target: Optional[int] = None
    counters: dict[str, Any] = field(default_factory=dict)
    decisions: list[list[float]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total campaign time on the simulated clock."""
        return self.finished - self.started

    # -- construction ------------------------------------------------------

    @classmethod
    def from_result(cls, result: CampaignResult, *, tenant: str = "",
                    sim_seconds: Optional[float] = None,
                    target: Optional[float] = None) -> "CampaignReport":
        """Derive every reported quantity from one campaign result.

        ``target`` defaults to the spec's own target; ``sim_seconds``
        defaults to the campaign's finish time (pass ``sim.now`` when the
        clock kept running after the campaign ended).
        """
        spec = result.spec
        if target is None:
            target = spec.target
        ttt: Optional[float] = None
        ett: Optional[int] = None
        decisions: list[list[float]] = []
        n_valid = 0
        for i, rec in enumerate(result.records, start=1):
            usable = rec.valid and rec.objective is not None
            if usable:
                n_valid += 1
                if target is not None and ttt is None \
                        and rec.objective >= target:
                    ttt = rec.finished - result.started
                    ett = i
            decisions.append([
                float(rec.index),
                float(rec.objective) if usable else float("nan"),
                float(rec.started), float(rec.finished),
                1.0 if rec.valid else 0.0])
        n = len(result.records)
        best = result.best_value
        return cls(
            campaign=spec.name, objective_key=spec.objective_key,
            tenant=tenant, n_experiments=n, n_valid=n_valid,
            correctness=(n_valid / n) if n else 1.0,
            best_value=float(best) if best is not None else None,
            best_params=(dict(result.best_params)
                         if result.best_params is not None else None),
            stop_reason=result.stop_reason,
            started=float(result.started), finished=float(result.finished),
            sim_seconds=(float(sim_seconds) if sim_seconds is not None
                         else float(result.finished)),
            target=target, time_to_target=ttt, experiments_to_target=ett,
            counters=dict(result.counters), decisions=decisions)

    def with_tenant(self, tenant: str) -> "CampaignReport":
        """Copy of this report attributed to ``tenant``."""
        return replace(self, tenant=tenant)

    # -- views -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Stable plain-data form (wire/JSON/decision-hash shape).

        A strict superset of the legacy ``BuiltTestbed.run_summary``
        keys; ``decisions`` rows are unchanged from that shape so
        decision hashes stay sensitive to the full experiment sequence.
        """
        return {
            "schema": REPORT_SCHEMA,
            "campaign": self.campaign,
            "tenant": self.tenant,
            "objective_key": self.objective_key,
            "n_experiments": self.n_experiments,
            "n_valid": self.n_valid,
            "correctness": self.correctness,
            "best_value": self.best_value,
            "stop_reason": self.stop_reason,
            "started": self.started,
            "finished": self.finished,
            "duration_s": self.duration,
            "sim_seconds": self.sim_seconds,
            "target": self.target,
            "time_to_target": self.time_to_target,
            "experiments_to_target": self.experiments_to_target,
            "counters": self.counters,
            "decisions": self.decisions,
        }

    def summary(self) -> dict[str, Any]:
        """The compact printable dict ``CampaignResult.summary`` used to
        hand-roll (same keys, same rounding)."""
        return {
            "campaign": self.campaign,
            "experiments": self.n_experiments,
            "valid": self.n_valid,
            "correctness": round(self.correctness, 4),
            "best": (round(self.best_value, 4)
                     if self.best_value is not None else None),
            "duration_s": round(self.duration, 1),
            "stop_reason": self.stop_reason,
            **self.counters,
        }

    def metrics(self) -> "CampaignMetrics":
        """Arm-comparison quantities (speedup_vs / reduction_vs)."""
        from repro.core.metrics import CampaignMetrics
        return CampaignMetrics(
            time_to_target=self.time_to_target,
            experiments_to_target=self.experiments_to_target,
            duration=self.duration, n_experiments=self.n_experiments,
            best_value=self.best_value, target=self.target)
