"""The hierarchical AI-agent campaign orchestrator (M8).

The cognitive loop of one autonomous laboratory:

1. **Sync** — absorb cross-facility knowledge (M9) when attached.
2. **Plan** — the planner agent proposes an experiment (LLM-orchestrated
   or LLM-direct, per its mode).
3. **Verify** — the verification stack vets the plan; rejected plans are
   repaired (bounded attempts) before anything touches hardware.
4. **Execute** — the executor runs the plan on instruments through the
   HAL (optionally wrapped in fault-tolerant retry/failover).
5. **Evaluate** — the evaluator updates the optimizer and convergence
   state; valid results are published to the knowledge base and, when a
   mesh node is attached, ingested into the data fabric with provenance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.agents.evaluator import EvaluatorAgent
from repro.agents.executor import ExecutorAgent, ExperimentOutcome
from repro.agents.planner import ExperimentPlan, PlannerAgent
from repro.core.campaign import CampaignResult, CampaignSpec, ExperimentRecord
from repro.core.knowledge import KnowledgeBase
from repro.core.verification import VerificationStack
from repro.data.record import DataRecord
from repro.instruments.errors import InstrumentFault
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.faulttol import FaultTolerantExecutor
    from repro.data.mesh import DataMeshNode
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.sim.kernel import Simulator


class HierarchicalOrchestrator:
    """Drives one site's campaign loop.

    Parameters
    ----------
    sim:
        Kernel.
    planner / executor / evaluator:
        The agent trio for this site.
    verification:
        Optional :class:`VerificationStack`; omit to reproduce the
        "agent usage without verification tools" arm of M8.
    knowledge:
        Optional :class:`KnowledgeBase` this site participates in.
    fault_tolerant:
        Optional :class:`~repro.core.faulttol.FaultTolerantExecutor`
        wrapping execution.
    mesh_node:
        Optional data-fabric node; valid measurements are ingested with
        full provenance.
    max_repair_attempts:
        Plans repaired at most this many times before being skipped.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every campaign becomes
        a span tree (campaign > experiment > plan/verify/execute/evaluate)
        replayable from the JSON-lines export.  Defaults to the no-op
        tracer, which costs ~nothing.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; campaign
        counters and the per-site experiment-duration histogram report
        into it.
    """

    def __init__(self, sim: "Simulator", planner: PlannerAgent,
                 executor: ExecutorAgent, evaluator: EvaluatorAgent, *,
                 verification: Optional[VerificationStack] = None,
                 knowledge: Optional[KnowledgeBase] = None,
                 fault_tolerant: Optional["FaultTolerantExecutor"] = None,
                 mesh_node: Optional["DataMeshNode"] = None,
                 max_repair_attempts: int = 2,
                 tracer: Optional["Tracer"] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        self.sim = sim
        self.planner = planner
        self.executor = executor
        self.evaluator = evaluator
        self.verification = verification
        self.knowledge = knowledge
        self.fault_tolerant = fault_tolerant
        self.mesh_node = mesh_node
        self.max_repair_attempts = max_repair_attempts
        self.site = executor.site
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if metrics is not None:
            self._n_experiments = metrics.counter("campaign.experiments",
                                                  site=self.site)
            self._n_skipped = metrics.counter("campaign.skipped_plans",
                                              site=self.site)
            self._duration_hist = metrics.histogram(
                "campaign.experiment_duration", site=self.site)

    # -- the loop ---------------------------------------------------------------

    def run_campaign(self, spec: CampaignSpec):
        """Generator: run a campaign to completion; returns the result."""
        result = CampaignResult(spec=spec, started=self.sim.now)
        stop_reason = "budget-exhausted"
        skipped_plans = 0
        consecutive_skips = 0
        tracer = self.tracer

        with tracer.span("campaign", name=spec.name, site=self.site,
                         budget=spec.max_experiments):
            while result.n_experiments < spec.max_experiments:
                with tracer.span("experiment", index=result.n_experiments):
                    if self.knowledge is not None:
                        with tracer.span("sync"):
                            self.knowledge.sync(self.site)

                    with tracer.span("plan"):
                        plan = yield from self.planner.next_plan()
                    with tracer.span("verify", plan_id=plan.plan_id):
                        plan, accepted = yield from self._verify_and_repair(
                            plan)
                    if not accepted:
                        tracer.instant("plan-skipped", plan_id=plan.plan_id)
                        skipped_plans += 1
                        consecutive_skips += 1
                        if consecutive_skips >= 25:
                            # Verification is rejecting everything the
                            # planner can produce: stop and say so rather
                            # than spin forever.
                            stop_reason = "verification-stalemate"
                            break
                        continue
                    consecutive_skips = 0

                    try:
                        with tracer.span("execute", plan_id=plan.plan_id):
                            outcome = yield from self._execute(plan)
                    except InstrumentFault as exc:
                        stop_reason = f"instrument-fault: {exc}"
                        break

                    with tracer.span("evaluate"):
                        verdict = self.evaluator.evaluate(outcome)
                    self._record(result, outcome)
                    if outcome.valid and outcome.objective is not None:
                        self._disseminate(outcome)

                    if verdict.get("target_reached"):
                        stop_reason = "target-reached"
                        break
                    if verdict.get("converged"):
                        stop_reason = "converged"
                        break

        result.finished = self.sim.now
        result.best_value = self.evaluator.best_value
        result.best_params = self.evaluator.best_params
        result.stop_reason = stop_reason
        result.counters = self._counters(skipped_plans)
        if self.metrics is not None:
            self._n_skipped.inc(skipped_plans)
        tracer.instant("campaign-finished", stop_reason=stop_reason,
                       experiments=result.n_experiments)
        return result

    # -- stages ---------------------------------------------------------------------

    def _verify_and_repair(self, plan: ExperimentPlan):
        """Generator: returns (plan, accepted)."""
        if self.verification is None:
            return plan, True
        for _attempt in range(self.max_repair_attempts + 1):
            verdict = yield from self.verification.verify(plan)
            if verdict.ok:
                return plan, True
            plan = yield from self.planner.repair_plan(plan)
        # Final repaired plan gets one last check; give up if still bad.
        verdict = yield from self.verification.verify(plan)
        return plan, verdict.ok

    def _execute(self, plan: ExperimentPlan):
        if self.fault_tolerant is not None:
            outcome = yield from self.fault_tolerant.execute(plan)
        else:
            outcome = yield from self.executor.execute(plan)
        return outcome

    def _record(self, result: CampaignResult,
                outcome: ExperimentOutcome) -> None:
        if self.metrics is not None:
            self._n_experiments.inc()
            self._duration_hist.observe(outcome.finished - outcome.started)
        result.records.append(ExperimentRecord(
            index=len(result.records), params=dict(outcome.plan.params),
            valid=outcome.valid, objective=outcome.objective,
            source=outcome.plan.source, started=outcome.started,
            finished=outcome.finished, verified=outcome.plan.verified,
            repaired=outcome.plan.repaired, failure=outcome.failure,
            site=self.site))

    def _disseminate(self, outcome: ExperimentOutcome) -> None:
        if self.knowledge is not None:
            self.knowledge.publish(
                self.site, outcome.plan.params, float(outcome.objective),
                trace=f"{outcome.plan.plan_id}: {outcome.plan.rationale}")
        if self.mesh_node is not None and outcome.measurement is not None:
            record = DataRecord.from_measurement(outcome.measurement)
            record.provenance_id = record.record_id
            self.mesh_node.ingest(record)
            prov = self.mesh_node.provenance
            activity = f"exp/{outcome.plan.plan_id}"
            prov.agent(self.planner.name, kind="planner")
            prov.agent(self.executor.name, kind="executor")
            prov.activity(activity, started=outcome.started,
                          ended=outcome.finished)
            prov.was_associated_with(activity, self.executor.name)
            if outcome.sample is not None:
                prov.entity(outcome.sample.sample_id)
                prov.used(activity, outcome.sample.sample_id)
            prov.entity(record.record_id)
            prov.was_generated_by(record.record_id, activity)
            prov.was_attributed_to(record.record_id, self.planner.name)

    def _counters(self, skipped_plans: int) -> dict[str, Any]:
        counters: dict[str, Any] = {
            "skipped_plans": skipped_plans,
            "planner_mode": self.planner.mode,
            "plans": dict(self.planner.plan_stats),
            "llm": dict(self.planner.llm.stats),
        }
        if self.verification is not None:
            counters["verification"] = dict(self.verification.stats)
        if self.fault_tolerant is not None:
            counters["fault_tolerance"] = dict(self.fault_tolerant.stats)
        return counters
