"""Multi-site federation assembly and sample logistics.

:class:`FederationManager` wires the whole AISLE stack for N laboratories
— topology, transport, zero-trust security, service discovery, data mesh,
agent runtime — and stamps out :class:`LabSite` bundles (instruments +
HAL + twin + agent trio) ready for orchestration.  It is the builder the
examples and multi-site experiments (E3, E10, F1) share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.agents.base import AgentRuntime
from repro.agents.evaluator import EvaluatorAgent
from repro.agents.executor import ExecutorAgent
from repro.agents.llm import SimulatedLLM
from repro.agents.planner import PlannerAgent
from repro.comm.registry import ServiceRecord, ServiceRegistry
from repro.core.faulttol import FaultTolerantExecutor
from repro.core.knowledge import KnowledgeBase
from repro.core.manual import ManualOrchestrator
from repro.core.orchestrator import HierarchicalOrchestrator
from repro.core.verification import (PhysicsConstraintVerifier, TwinVerifier,
                                     VerificationStack)
from repro.data.fair import FairGovernor
from repro.data.mesh import DataMeshNode, FederatedDataMesh
from repro.instruments.flow_reactor import FluidicReactor
from repro.instruments.hal import HardwareAbstractionLayer
from repro.instruments.spectrometer import PLSpectrometer
from repro.instruments.synthesis import BatchSynthesisRobot
from repro.instruments.twin import DigitalTwin
from repro.instruments.vendors import VENDOR_DIALECTS, make_vendor_protocol
from repro.labsci.landscapes import Landscape
from repro.methods.nested import NestedBayesianOptimizer
from repro.net.faults import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.net.topology import Topology
from repro.net.transport import Network
from repro.resilience import ChaosController
from repro.security.abac import (PolicyEngine, allow_all_within_federation,
                                 standard_lab_policy)
from repro.security.identity import (FederatedIdentityProvider, Identity,
                                     TrustFabric)
from repro.security.zerotrust import ZeroTrustGateway
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.methods.baselines import AskTellOptimizer


@dataclass
class LabSite:
    """Everything one laboratory contributes to the federation."""

    name: str
    institution: str
    landscape: Landscape
    hal: HardwareAbstractionLayer
    synthesis: Any
    characterization: Any
    twin: DigitalTwin
    planner: PlannerAgent
    executor: ExecutorAgent
    evaluator: EvaluatorAgent
    optimizer: "AskTellOptimizer"
    mesh_node: Optional[DataMeshNode] = None
    vendor: str = "aisle-ref"

    def instruments(self) -> list[Any]:
        return [self.synthesis, self.characterization]


#: Safety/science envelope for quantum-dot/perovskite style chemistry:
#: tighter than hardware interlocks on purpose.
DEFAULT_SAFETY_ENVELOPE = {"temperature": (0.0, 205.0),
                           "dopant_conc": (0.0, 0.5)}
DEFAULT_FORBIDDEN = [{"solvent": "DMF", "temperature": (160.0, None)},
                     {"solvent": "toluene", "temperature": (180.0, None)}]


def clip_space_to_envelope(space, envelope: dict):
    """Intersect a parameter space's continuous bounds with an envelope.

    Points in the clipped space remain valid in the original space, so
    landscapes and instruments accept them unchanged.
    """
    from repro.labsci.landscapes import ContinuousDim, ParameterSpace
    dims = []
    for d in space.dims:
        if isinstance(d, ContinuousDim) and d.name in envelope:
            lo, hi = envelope[d.name]
            dims.append(ContinuousDim(d.name, max(d.low, float(lo)),
                                      min(d.high, float(hi)), d.unit))
        else:
            dims.append(d)
    return ParameterSpace(dims)


class FederationManager:
    """Builds and owns the shared cross-institution infrastructure.

    Parameters
    ----------
    seed:
        Root seed for every stochastic component.
    n_sites:
        Number of laboratories (testbed topology size).
    objective_key:
        The measured property campaigns optimize.
    secure:
        Wire the zero-trust stack (identity, ABAC, gateway).
    with_mesh:
        Attach a federated data mesh node per lab.
    mesh_shards:
        ``None`` (default) backs the mesh with one flat
        :class:`~repro.data.mesh.DiscoveryIndex`; a positive count backs
        it with a :class:`~repro.data.shard.ShardedDiscoveryIndex` of
        that many facility-routed shards (the 1000-lab configuration).
    metrics:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; one
        is created when omitted so ``fed.metrics`` always sees the whole
        federation (transport, HAL, fault tolerance, campaigns).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer` threaded into every
        orchestrator built by :meth:`make_orchestrator` (no-op default).
    """

    def __init__(self, seed: int = 0, n_sites: int = 3, *,
                 objective_key: str = "plqy", secure: bool = False,
                 with_mesh: bool = False,
                 mesh_shards: Optional[int] = None,
                 wan_latency_s: float = 0.02,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.rngs = RngRegistry(seed)
        self.objective_key = objective_key
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.topology = Topology.national_lab_testbed(
            n_sites, latency_s=wan_latency_s, jitter_s=wan_latency_s / 10.0)
        self.faults = FaultInjector(self.sim)
        self.chaos = ChaosController(self.sim, self.faults,
                                     rngs=self.rngs, metrics=self.metrics)
        self.network = Network(self.sim, self.topology,
                               self.rngs.stream("net"), self.faults,
                               metrics=self.metrics)
        self.runtime = AgentRuntime(self.sim, self.network)
        self.registry = ServiceRegistry(self.sim)
        self.labs: dict[str, LabSite] = {}

        self.fabric: Optional[TrustFabric] = None
        self.gateway: Optional[ZeroTrustGateway] = None
        if secure:
            self.fabric = TrustFabric()
            engine = PolicyEngine(allow_all_within_federation())
            site_institution = {}
            for site in self.topology.sites():
                inst = site.institution or site.name
                idp = FederatedIdentityProvider(self.sim, inst)
                idp.enroll(Identity.make(f"agent@{inst}", inst, role="agent"))
                self.fabric.add_provider(idp)
                engine.set_policy(inst, standard_lab_policy(inst))
                site_institution[site.name] = inst
            self.fabric.federate()
            self.gateway = ZeroTrustGateway(self.sim, self.fabric, engine,
                                            site_institution=site_institution)

        self.mesh: Optional[FederatedDataMesh] = None
        if with_mesh or mesh_shards is not None:
            index = None
            if mesh_shards is not None:
                from repro.data.shard import ShardedDiscoveryIndex
                index = ShardedDiscoveryIndex(mesh_shards)
            self.mesh = FederatedDataMesh(self.sim, self.network,
                                          index=index)

    # -- lab construction ----------------------------------------------------------

    def add_lab(self, site_name: str,
                landscape_factory: Callable[[str], Landscape], *,
                synthesis_kind: str = "flow", vendor: str = "aisle-ref",
                planner_mode: str = "hierarchical",
                hallucination_rate: float = 0.25,
                optimizer_factory: Optional[Callable[..., Any]] = None,
                safety_envelope: Optional[dict] = None,
                forbidden: Optional[list[dict]] = None,
                mtbf_hours: float = float("inf"),
                repair_time_s: float = 3600.0) -> LabSite:
        """Create a fully wired laboratory at ``site_name``."""
        if site_name in self.labs:
            raise ValueError(f"lab already exists at {site_name!r}")
        if not self.topology.has_site(site_name):
            raise KeyError(f"{site_name!r} is not in the topology")
        site = self.topology.site(site_name)
        institution = site.institution or site_name
        landscape = landscape_factory(site_name)
        safety = dict(safety_envelope if safety_envelope is not None
                      else DEFAULT_SAFETY_ENVELOPE)
        forbidden = list(forbidden if forbidden is not None
                         else DEFAULT_FORBIDDEN)

        # Instruments behind a vendor protocol + HAL (M1).
        hal = HardwareAbstractionLayer(metrics=self.metrics)
        if synthesis_kind == "flow":
            synthesis = FluidicReactor(
                self.sim, f"reactor.{site_name}", site_name, self.rngs,
                landscape, mtbf_hours=mtbf_hours, repair_time_s=repair_time_s)
        elif synthesis_kind == "batch":
            synthesis = BatchSynthesisRobot(
                self.sim, f"robot.{site_name}", site_name, self.rngs,
                landscape, mtbf_hours=mtbf_hours, repair_time_s=repair_time_s)
        else:
            raise ValueError(f"unknown synthesis kind {synthesis_kind!r}")
        characterization = PLSpectrometer(
            self.sim, f"spec.{site_name}", site_name, self.rngs,
            mtbf_hours=mtbf_hours, repair_time_s=repair_time_s)
        hal.register(make_vendor_protocol(synthesis, vendor))
        hal.register(make_vendor_protocol(characterization, "aisle-ref"))
        twin = DigitalTwin(synthesis, landscape=landscape, rngs=self.rngs,
                           safety_envelope=safety,
                           forbidden_combinations=forbidden)

        # Advertise to the service registry (M12 substrate).
        self.registry.register(ServiceRecord(
            instance=synthesis.name, service_type="_instrument._aisle",
            site=site_name, capabilities=synthesis.capability_descriptor(),
            ttl_s=1e12))

        # Agent trio.  The optimizer searches the *safety-clipped* space:
        # campaign designers configure sound methods with the safe
        # operating region, so only free-form LLM proposals can stray
        # (which is exactly what verification exists to catch).
        search_space = clip_space_to_envelope(landscape.space, safety)
        if optimizer_factory is None:
            optimizer = NestedBayesianOptimizer(
                search_space, self.rngs.stream(f"opt/{site_name}"))
        else:
            optimizer = optimizer_factory(
                search_space, self.rngs.stream(f"opt/{site_name}"))
        llm = SimulatedLLM(self.sim, self.rngs.stream(f"llm/{site_name}"),
                           hallucination_rate=hallucination_rate)
        planner = PlannerAgent(self.sim, f"planner.{site_name}", site_name,
                               self.runtime, optimizer, llm,
                               mode=planner_mode, safety_envelope=safety)
        executor = ExecutorAgent(self.sim, f"executor.{site_name}",
                                 site_name, self.runtime, hal,
                                 synthesis.name, characterization,
                                 self.objective_key)
        evaluator = EvaluatorAgent(self.sim, f"evaluator.{site_name}",
                                   site_name, self.runtime, planner)

        mesh_node = None
        if self.mesh is not None:
            mesh_node = self.mesh.make_node(
                site_name, institution, governor=FairGovernor(),
                gateway=self.gateway)

        lab = LabSite(name=site_name, institution=institution,
                      landscape=landscape, hal=hal, synthesis=synthesis,
                      characterization=characterization, twin=twin,
                      planner=planner, executor=executor,
                      evaluator=evaluator, optimizer=optimizer,
                      mesh_node=mesh_node, vendor=vendor)
        self.labs[site_name] = lab
        return lab

    # -- orchestrator assembly ------------------------------------------------------

    def verification_stack(self, lab: LabSite) -> VerificationStack:
        physics = PhysicsConstraintVerifier(
            lab.landscape.space,
            safety_envelope=lab.twin.safety_envelope,
            forbidden_combinations=lab.twin.forbidden_combinations,
            outcome_bounds={"objective": (0.0, 1.0)})
        return VerificationStack(self.sim, [
            physics,
            TwinVerifier(lab.twin, objective_key=self.objective_key),
        ])

    def make_orchestrator(self, lab: LabSite, *, verified: bool = True,
                          knowledge: Optional[KnowledgeBase] = None,
                          fault_tolerant: bool = False,
                          alternates: Optional[list[LabSite]] = None
                          ) -> HierarchicalOrchestrator:
        verification = self.verification_stack(lab) if verified else None
        ft = None
        if fault_tolerant:
            ft = FaultTolerantExecutor(
                self.sim, lab.executor,
                primary_instruments=lab.instruments(),
                alternates=[alt.executor for alt in (alternates or [])],
                metrics=self.metrics)
        return HierarchicalOrchestrator(
            self.sim, lab.planner, lab.executor, lab.evaluator,
            verification=verification, knowledge=knowledge,
            fault_tolerant=ft, mesh_node=lab.mesh_node,
            tracer=self.tracer, metrics=self.metrics)

    def make_manual(self, lab: LabSite, **kw: Any) -> ManualOrchestrator:
        return ManualOrchestrator(self.sim, lab.planner, lab.executor,
                                  lab.evaluator,
                                  rng=self.rngs.stream(f"human/{lab.name}"),
                                  **kw)

    def make_knowledge_base(self, policy: str = "corrected") -> KnowledgeBase:
        kb = KnowledgeBase(self.sim, self.network, policy=policy)
        for lab in self.labs.values():
            kb.register(lab.name, lab.optimizer, lab.landscape.space)
        return kb

    # -- logistics --------------------------------------------------------------------------

    def ship_sample(self, sample, dst_site: str,
                    shipping_time_s: float = 24 * 3600.0):
        """Generator: physically move a sample between sites.

        Unlike data, matter moves on courier timescales — the asymmetry
        that makes cross-facility *knowledge* sharing (bits, E3) so much
        cheaper than cross-facility sample logistics.
        """
        if sample.site == dst_site:
            return sample
        yield self.sim.timeout(shipping_time_s)
        sample.record(self.sim.now, "courier", f"shipped to {dst_site}")
        sample.site = dst_site
        return sample
