"""Dependency-DAG execution of multi-step experimental workflows.

The paper's canonical scenario — "synthesizing a material in one lab,
characterizing it at national user facilities, and running simulations on
HPC systems" — is a DAG of heterogeneous steps.  A :class:`WorkflowDAG`
holds named steps (generator factories) with dependencies and executes
every ready step concurrently on the kernel, with per-step retry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator


class WorkflowError(Exception):
    """A step failed permanently, or the graph is malformed."""


@dataclass
class WorkflowStep:
    """One node of the workflow.

    ``factory`` is called as ``factory(results)`` — receiving the dict of
    upstream step results — and must return a generator to run on the
    kernel.  ``retries`` re-invokes the factory on failure.
    """

    name: str
    factory: Callable[[dict[str, Any]], Any]
    deps: tuple[str, ...] = ()
    retries: int = 0
    optional: bool = False


class WorkflowDAG:
    """Build-then-run workflow executor with maximal parallelism."""

    def __init__(self, sim: "Simulator", name: str = "workflow") -> None:
        self.sim = sim
        self.name = name
        self._graph = nx.DiGraph()
        self._steps: dict[str, WorkflowStep] = {}
        self.results: dict[str, Any] = {}
        self.failures: dict[str, str] = {}
        self.timings: dict[str, tuple[float, float]] = {}

    # -- construction ---------------------------------------------------------

    def add(self, name: str, factory: Callable[[dict[str, Any]], Any],
            deps: tuple[str, ...] = (), retries: int = 0,
            optional: bool = False) -> WorkflowStep:
        if name in self._steps:
            raise WorkflowError(f"duplicate step {name!r}")
        for dep in deps:
            if dep not in self._steps:
                raise WorkflowError(f"{name!r} depends on unknown {dep!r}")
        step = WorkflowStep(name=name, factory=factory, deps=tuple(deps),
                            retries=retries, optional=optional)
        self._steps[name] = step
        self._graph.add_node(name)
        for dep in deps:
            self._graph.add_edge(dep, name)
        return step

    def __len__(self) -> int:
        return len(self._steps)

    # -- execution ------------------------------------------------------------------

    def run(self):
        """Generator: execute the DAG; returns the results dict.

        Steps start the moment their dependencies complete.  A failed
        required step aborts downstream work and raises
        :class:`WorkflowError`; failed *optional* steps are recorded and
        skipped over.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            raise WorkflowError("workflow graph has a cycle")
        pending = dict(self._steps)
        running: dict[str, Any] = {}
        completed: set[str] = set()

        def ready(step: WorkflowStep) -> bool:
            return all(d in completed for d in step.deps)

        def deps_failed(step: WorkflowStep) -> bool:
            return any(d in self.failures for d in step.deps)

        while pending or running:
            # Launch everything that became ready.
            for name in [n for n, s in pending.items() if ready(s)]:
                step = pending.pop(name)
                running[name] = self.sim.process(
                    self._run_step(step))
            # Drop steps whose dependencies failed.
            for name in [n for n, s in pending.items() if deps_failed(s)]:
                step = pending.pop(name)
                self.failures[name] = "upstream failure"
            if not running:
                break
            # Wait for any running step to finish.
            procs = list(running.values())
            yield self.sim.any_of(procs)
            for name, proc in list(running.items()):
                if not proc.is_alive:
                    del running[name]
                    ok, payload = proc.value
                    if ok:
                        completed.add(name)
                        self.results[name] = payload
                    else:
                        self.failures[name] = payload
                        if not self._steps[name].optional:
                            # Cancel everything else and abort.
                            for other in running.values():
                                if other.is_alive:
                                    other.interrupt("workflow-abort")
                            raise WorkflowError(
                                f"step {name!r} failed: {payload}")
        return dict(self.results)

    def _run_step(self, step: WorkflowStep):
        """Generator: run one step with retries; returns (ok, payload)."""
        from repro.sim.process import Interrupt
        start = self.sim.now
        last_error = ""
        for _attempt in range(step.retries + 1):
            inner = self.sim.process(step.factory(self.results))
            try:
                value = yield inner
                self.timings[step.name] = (start, self.sim.now)
                return True, value
            except Interrupt:
                # Aborted mid-step: absorb the detached inner process's
                # eventual failure so it can't crash the simulation.
                if inner.is_alive and inner.callbacks is not None:
                    inner.callbacks.append(
                        lambda ev: setattr(ev, "_defused", True))
                last_error = "aborted"
                break
            except Exception as exc:  # noqa: BLE001 - step errors are data
                last_error = f"{type(exc).__name__}: {exc}"
        self.timings[step.name] = (start, self.sim.now)
        return False, last_error

    # -- introspection ---------------------------------------------------------------------

    def critical_path(self) -> list[str]:
        """Longest-duration chain through the executed DAG."""
        durations = {n: (self.timings[n][1] - self.timings[n][0])
                     if n in self.timings else 0.0
                     for n in self._graph.nodes}
        best: dict[str, tuple[float, list[str]]] = {}
        for node in nx.topological_sort(self._graph):
            preds = list(self._graph.predecessors(node))
            if preds:
                prev_cost, prev_path = max(
                    (best[p] for p in preds), key=lambda t: t[0])
            else:
                prev_cost, prev_path = 0.0, []
            best[node] = (prev_cost + durations[node], prev_path + [node])
        if not best:
            return []
        return max(best.values(), key=lambda t: t[0])[1]
