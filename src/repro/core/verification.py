"""The verification and validation stack (M8, research priority 2 of §3.3).

"Infrastructure for verification and validation for AI agents
incorporating digital twin-based in-situ simulations, formal methods,
symbolic verification methods to enforce logical, physics-based
constraints as hard boundaries."

Three verifiers, composable in a :class:`VerificationStack`:

- :class:`PhysicsConstraintVerifier` — symbolic/logical checks: domain
  validity, safety envelopes, forbidden combinations, and physical sanity
  of *claimed* outcomes (a PLQY cannot exceed 1).  Instantaneous.
- :class:`TwinVerifier` — digital-twin in-situ simulation of the plan
  (costs simulated time, catches claims that disagree with physics).
- :class:`SurrogateConsistencyVerifier` — statistical check of the claim
  against the campaign's own GP posterior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.agents.planner import ExperimentPlan
from repro.instruments.twin import DigitalTwin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.labsci.landscapes import ParameterSpace
    from repro.methods.bayesopt import BayesianOptimizer
    from repro.sim.kernel import Simulator


@dataclass
class VerificationResult:
    """Aggregate verdict over the whole stack."""

    ok: bool
    reasons: list[str] = field(default_factory=list)
    checked_by: list[str] = field(default_factory=list)
    time_spent: float = 0.0

    def __bool__(self) -> bool:
        return self.ok


class PhysicsConstraintVerifier:
    """Hard symbolic constraints — fast, deterministic, zero sim time.

    Parameters
    ----------
    space:
        The campaign parameter space (domain validity).
    safety_envelope:
        Tighter-than-interlock bounds per continuous parameter.
    forbidden_combinations:
        Combination constraints in :class:`DigitalTwin` syntax.
    outcome_bounds:
        Physical bounds on claimed outcomes, e.g.
        ``{"objective": (0.0, 1.0)}``.
    """

    name = "physics-constraints"

    def __init__(self, space: "ParameterSpace",
                 safety_envelope: Optional[Mapping[str, tuple[float, float]]] = None,
                 forbidden_combinations: Optional[list[dict[str, Any]]] = None,
                 outcome_bounds: Optional[Mapping[str, tuple[float, float]]] = None
                 ) -> None:
        self.space = space
        self.safety_envelope = dict(safety_envelope or {})
        self.forbidden_combinations = list(forbidden_combinations or [])
        self.outcome_bounds = dict(outcome_bounds or {})
        self.stats = {"checks": 0, "rejections": 0}

    def check(self, plan: ExperimentPlan) -> list[str]:
        self.stats["checks"] += 1
        reasons: list[str] = []
        try:
            self.space.validate(plan.params)
        except ValueError as exc:
            reasons.append(f"invalid parameters: {exc}")
        for key, (lo, hi) in self.safety_envelope.items():
            v = plan.params.get(key)
            if isinstance(v, (int, float)) and not lo <= float(v) <= hi:
                reasons.append(f"{key}={v} outside safe envelope [{lo}, {hi}]")
        for combo in self.forbidden_combinations:
            if DigitalTwin._combo_applies(combo, plan.params):
                reasons.append(f"forbidden combination: {combo}")
        for key, (lo, hi) in self.outcome_bounds.items():
            claimed = plan.expected.get(key)
            if claimed is not None and not lo <= float(claimed) <= hi:
                reasons.append(
                    f"claimed {key}={claimed} is physically impossible "
                    f"(bounds [{lo}, {hi}])")
        if reasons:
            self.stats["rejections"] += 1
        return reasons


class TwinVerifier:
    """Digital-twin in-situ validation (spends simulated time)."""

    name = "digital-twin"

    def __init__(self, twin: DigitalTwin, claim_tolerance: float = 0.6,
                 objective_key: str = "") -> None:
        self.twin = twin
        self.claim_tolerance = claim_tolerance
        self.objective_key = objective_key
        self.stats = {"checks": 0, "rejections": 0}

    def validate(self, plan: ExperimentPlan):
        """Generator: returns a list of reasons (empty = pass)."""
        self.stats["checks"] += 1
        expected = None
        if plan.expected and self.twin.landscape is not None:
            key = self.objective_key or self.twin.landscape.objective
            if "objective" in plan.expected:
                expected = {key: plan.expected["objective"]}
        verdict = yield from self.twin.validate(
            plan.params, expected=expected, tolerance=self.claim_tolerance)
        if not verdict.ok:
            self.stats["rejections"] += 1
        return list(verdict.reasons)


class SurrogateConsistencyVerifier:
    """Flags claims wildly inconsistent with the campaign's own GP.

    A claim more than ``z_threshold`` posterior standard deviations above
    the surrogate mean is rejected — statistical grounding of agent
    claims in accumulated evidence.
    """

    name = "surrogate-consistency"

    def __init__(self, optimizer: "BayesianOptimizer",
                 z_threshold: float = 6.0, min_observations: int = 8) -> None:
        self.optimizer = optimizer
        self.z_threshold = z_threshold
        self.min_observations = min_observations
        self.stats = {"checks": 0, "rejections": 0}

    def check(self, plan: ExperimentPlan) -> list[str]:
        self.stats["checks"] += 1
        claimed = plan.expected.get("objective")
        if claimed is None or self.optimizer.n_observed < self.min_observations:
            return []
        posterior = getattr(self.optimizer, "posterior_at", None)
        if posterior is None:
            return []
        try:
            mean, std = posterior(plan.params)
        except Exception:
            return []  # unencodable params are the physics verifier's job
        if std in (0.0, float("inf")):
            return []
        z = (float(claimed) - mean) / std
        if z > self.z_threshold:
            self.stats["rejections"] += 1
            return [f"claimed objective {claimed:.3g} is {z:.1f} sigma above "
                    f"the surrogate posterior ({mean:.3g} +- {std:.3g})"]
        return []


class VerificationStack:
    """Ordered verifier pipeline with short-circuit rejection.

    Instantaneous verifiers (``check``) run first; time-bearing verifiers
    (``validate`` generators) only run on plans that survive them —
    cheap-first ordering keeps verification latency low.
    """

    def __init__(self, sim: "Simulator", verifiers: list[Any]) -> None:
        self.sim = sim
        self.verifiers = list(verifiers)
        self.stats = {"plans": 0, "rejected": 0, "time_spent": 0.0}

    def verify(self, plan: ExperimentPlan):
        """Generator: run the stack; returns a VerificationResult."""
        self.stats["plans"] += 1
        t0 = self.sim.now
        reasons: list[str] = []
        checked: list[str] = []
        instant = [v for v in self.verifiers if hasattr(v, "check")]
        timed = [v for v in self.verifiers if hasattr(v, "validate")]
        for v in instant:
            checked.append(v.name)
            reasons.extend(v.check(plan))
            if reasons:
                break
        if not reasons:
            for v in timed:
                checked.append(v.name)
                more = yield from v.validate(plan)
                reasons.extend(more)
                if reasons:
                    break
        elapsed = self.sim.now - t0
        self.stats["time_spent"] += elapsed
        ok = not reasons
        if not ok:
            self.stats["rejected"] += 1
        plan.verified = ok
        return VerificationResult(ok=ok, reasons=reasons, checked_by=checked,
                                  time_spent=elapsed)

    @property
    def rejection_rate(self) -> float:
        return (self.stats["rejected"] / self.stats["plans"]
                if self.stats["plans"] else 0.0)
