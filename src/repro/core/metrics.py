"""Campaign comparison metrics used throughout the benchmarks."""

from __future__ import annotations

from typing import Optional

from repro.core.campaign import CampaignResult


def time_to_target(result: CampaignResult,
                   target: float) -> Optional[float]:
    """Sim-seconds from campaign start until the target was first met.

    ``None`` when the campaign never reached it.
    """
    for record in result.records:
        if (record.valid and record.objective is not None
                and record.objective >= target):
            return record.finished - result.started
    return None


def experiments_to_target(result: CampaignResult,
                          target: float) -> Optional[int]:
    """Number of executed experiments until the target was first met."""
    for i, record in enumerate(result.records, start=1):
        if (record.valid and record.objective is not None
                and record.objective >= target):
            return i
    return None


def speedup(baseline_time: Optional[float],
            improved_time: Optional[float]) -> Optional[float]:
    """baseline / improved, None-propagating.

    ``None`` in either slot (target never reached) yields ``None`` —
    benchmarks report "DNF" rather than a fabricated ratio.
    """
    if baseline_time is None or improved_time is None:
        return None
    if improved_time <= 0:
        return float("inf")
    return baseline_time / improved_time


def reduction_fraction(baseline: Optional[float],
                       improved: Optional[float]) -> Optional[float]:
    """1 - improved/baseline: the M9-style ">30% fewer" metric."""
    if baseline is None or improved is None or baseline <= 0:
        return None
    return 1.0 - improved / baseline
