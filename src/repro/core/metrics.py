"""Campaign comparison metrics used throughout the benchmarks.

The primary API is :class:`CampaignMetrics` — derive one per campaign
from a :class:`~repro.core.report.CampaignReport` via
:meth:`~repro.core.report.CampaignReport.metrics` and compare arms with
:meth:`~CampaignMetrics.speedup_vs` / :meth:`~CampaignMetrics.reduction_vs`.
The original module-level functions remain as thin delegating wrappers,
so existing call sites keep working unchanged, and
:meth:`CampaignMetrics.from_result` survives as a deprecated wrapper
over the report path.

All comparisons are ``None``-propagating: a campaign that never reached
its target yields ``None`` (reported as "DNF") rather than a fabricated
ratio.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.campaign import CampaignResult


@dataclass(frozen=True)
class CampaignMetrics:
    """Derived per-campaign quantities, computed once from a result.

    Attributes
    ----------
    time_to_target:
        Sim-seconds from campaign start until the target was first met
        (``None`` when the campaign never reached it, or no target given).
    experiments_to_target:
        Number of executed experiments until the target was first met.
    duration:
        Total campaign time on the simulated clock.
    n_experiments:
        Executed experiment count.
    best_value:
        Best objective the campaign achieved.
    target:
        The target these metrics were computed against (``None`` when the
        caller supplied none and the spec carried none).
    """

    time_to_target: Optional[float]
    experiments_to_target: Optional[int]
    duration: float
    n_experiments: int
    best_value: Optional[float]
    target: Optional[float] = None

    @classmethod
    def from_result(cls, result: CampaignResult,
                    target: Optional[float] = None) -> "CampaignMetrics":
        """Deprecated: use ``result.report(target=...).metrics()``.

        The derived-metric computation now lives in
        :meth:`repro.core.report.CampaignReport.from_result`; this
        wrapper delegates there and keeps old call sites working.
        """
        warnings.warn(
            "CampaignMetrics.from_result() is deprecated; build a "
            "CampaignReport (result.report(target=...).metrics()) instead",
            DeprecationWarning, stacklevel=2)
        return _metrics_for(result, target)

    # -- arm-vs-arm comparisons -------------------------------------------

    def speedup_vs(self, baseline: "CampaignMetrics | float | None",
                   ) -> Optional[float]:
        """baseline time-to-target / ours — the M8-style "3x" metric."""
        base = (baseline.time_to_target
                if isinstance(baseline, CampaignMetrics) else baseline)
        return speedup(base, self.time_to_target)

    def reduction_vs(self, baseline: "CampaignMetrics | float | None",
                     ) -> Optional[float]:
        """1 - ours/baseline in experiments — the M9 ">30% fewer" metric."""
        base = (baseline.experiments_to_target
                if isinstance(baseline, CampaignMetrics) else baseline)
        return reduction_fraction(base, self.experiments_to_target)


def _metrics_for(result: CampaignResult,
                 target: Optional[float]) -> "CampaignMetrics":
    """Shared (non-warning) report-path computation for the wrappers."""
    from repro.core.report import CampaignReport
    return CampaignReport.from_result(result, target=target).metrics()


# -- module-level wrappers (legacy surface, delegate to the report path) ----

def time_to_target(result: CampaignResult,
                   target: float) -> Optional[float]:
    """Sim-seconds from campaign start until the target was first met.

    ``None`` when the campaign never reached it.
    """
    return _metrics_for(result, target).time_to_target


def experiments_to_target(result: CampaignResult,
                          target: float) -> Optional[int]:
    """Number of executed experiments until the target was first met."""
    return _metrics_for(result, target).experiments_to_target


def speedup(baseline_time: Optional[float],
            improved_time: Optional[float]) -> Optional[float]:
    """baseline / improved, None-propagating.

    ``None`` in either slot (target never reached) yields ``None`` —
    benchmarks report "DNF" rather than a fabricated ratio.
    """
    if baseline_time is None or improved_time is None:
        return None
    if improved_time <= 0:
        return float("inf")
    return baseline_time / improved_time


def reduction_fraction(baseline: Optional[float],
                       improved: Optional[float]) -> Optional[float]:
    """1 - improved/baseline: the M9-style ">30% fewer" metric."""
    if baseline is None or improved is None or baseline <= 0:
        return None
    return 1.0 - improved / baseline
