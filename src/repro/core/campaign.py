"""Campaign specifications and results."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class CampaignSpec:
    """What a discovery campaign is trying to do.

    Attributes
    ----------
    name:
        Campaign identifier.
    objective_key:
        The measured quantity being maximized (e.g. ``"plqy"``).
    target:
        Optional objective value that ends the campaign on attainment.
    max_experiments:
        Hard budget of executed experiments.
    patience:
        Optional early stop after this many non-improving experiments.
    """

    name: str
    objective_key: str
    target: Optional[float] = None
    max_experiments: int = 50
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_experiments < 1:
            raise ValueError("max_experiments must be >= 1")


@dataclass
class ExperimentRecord:
    """One row of the campaign log."""

    index: int
    params: dict[str, Any]
    valid: bool
    objective: Optional[float]
    source: str
    started: float
    finished: float
    verified: bool = False
    repaired: bool = False
    failure: str = ""
    site: str = ""

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class CampaignResult:
    """Everything a campaign produced, plus derived metrics."""

    spec: CampaignSpec
    records: list[ExperimentRecord] = field(default_factory=list)
    best_value: Optional[float] = None
    best_params: Optional[dict[str, Any]] = None
    started: float = 0.0
    finished: float = 0.0
    stop_reason: str = ""
    counters: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Total campaign wall time on the simulated clock."""
        return self.finished - self.started

    @property
    def n_experiments(self) -> int:
        return len(self.records)

    @property
    def n_valid(self) -> int:
        return sum(1 for r in self.records if r.valid)

    @property
    def correctness(self) -> float:
        """Fraction of executed experiments that produced usable data.

        The E2 metric: a hallucinated recipe that ran and produced
        garbage counts against correctness.
        """
        if not self.records:
            return 1.0
        return self.n_valid / len(self.records)

    def best_trajectory(self) -> list[float]:
        """Running best objective over executed experiments."""
        out: list[float] = []
        cur = float("-inf")
        for r in self.records:
            if r.valid and r.objective is not None:
                cur = max(cur, r.objective)
            out.append(cur)
        return out

    def report(self, *, tenant: str = "",
               sim_seconds: Optional[float] = None,
               target: Optional[float] = None):
        """This result as a :class:`~repro.core.report.CampaignReport` —
        the canonical plain-data form every entry point now returns."""
        from repro.core.report import CampaignReport
        return CampaignReport.from_result(self, tenant=tenant,
                                          sim_seconds=sim_seconds,
                                          target=target)

    def summary(self) -> dict[str, Any]:
        """Deprecated: use ``result.report().summary()``.

        Thin wrapper kept for old call sites; the canonical summary
        assembly lives in :class:`~repro.core.report.CampaignReport`.
        """
        warnings.warn(
            "CampaignResult.summary() is deprecated; build a "
            "CampaignReport (result.report().summary()) instead",
            DeprecationWarning, stacklevel=2)
        return self.report().summary()
