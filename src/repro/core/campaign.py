"""Campaign specifications and results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class CampaignSpec:
    """What a discovery campaign is trying to do.

    Attributes
    ----------
    name:
        Campaign identifier.
    objective_key:
        The measured quantity being maximized (e.g. ``"plqy"``).
    target:
        Optional objective value that ends the campaign on attainment.
    max_experiments:
        Hard budget of executed experiments.
    patience:
        Optional early stop after this many non-improving experiments.
    """

    name: str
    objective_key: str
    target: Optional[float] = None
    max_experiments: int = 50
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_experiments < 1:
            raise ValueError("max_experiments must be >= 1")


@dataclass
class ExperimentRecord:
    """One row of the campaign log."""

    index: int
    params: dict[str, Any]
    valid: bool
    objective: Optional[float]
    source: str
    started: float
    finished: float
    verified: bool = False
    repaired: bool = False
    failure: str = ""
    site: str = ""

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class CampaignResult:
    """Everything a campaign produced, plus derived metrics."""

    spec: CampaignSpec
    records: list[ExperimentRecord] = field(default_factory=list)
    best_value: Optional[float] = None
    best_params: Optional[dict[str, Any]] = None
    started: float = 0.0
    finished: float = 0.0
    stop_reason: str = ""
    counters: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Total campaign wall time on the simulated clock."""
        return self.finished - self.started

    @property
    def n_experiments(self) -> int:
        return len(self.records)

    @property
    def n_valid(self) -> int:
        return sum(1 for r in self.records if r.valid)

    @property
    def correctness(self) -> float:
        """Fraction of executed experiments that produced usable data.

        The E2 metric: a hallucinated recipe that ran and produced
        garbage counts against correctness.
        """
        if not self.records:
            return 1.0
        return self.n_valid / len(self.records)

    def best_trajectory(self) -> list[float]:
        """Running best objective over executed experiments."""
        out: list[float] = []
        cur = float("-inf")
        for r in self.records:
            if r.valid and r.objective is not None:
                cur = max(cur, r.objective)
            out.append(cur)
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "campaign": self.spec.name,
            "experiments": self.n_experiments,
            "valid": self.n_valid,
            "correctness": round(self.correctness, 4),
            "best": (round(self.best_value, 4)
                     if self.best_value is not None else None),
            "duration_s": round(self.duration, 1),
            "stop_reason": self.stop_reason,
            **self.counters,
        }
